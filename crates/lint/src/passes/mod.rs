//! `sjc-analyze` — the cross-file layer of the checker.
//!
//! The line rules in `lib.rs` are single-line token scans; the passes here
//! see the whole workspace at once: a token stream per file (`lexer`), an
//! item model with function extents, visibility and test regions (`items`),
//! and a name-resolved call graph gated by the crate topology (`callgraph`).
//! Three passes run on top:
//!
//! * [`entropy`] — no simulation-crate function may *transitively* reach a
//!   wall-clock or entropy source, and nothing derived from one may flow
//!   into `sim_ns`/trace output (in any crate, bench included);
//! * [`par_closure`] — closures handed to the `sjc_par` runtime must not
//!   mutate captured state (the static counterpart of the 1-vs-8-thread
//!   bit-identity tests);
//! * [`error_flow`] — every `SimError` variant is both constructed and
//!   handled somewhere, and library code never silently discards a
//!   `Result`.
//!
//! The control-flow layer ([`crate::cfg`], [`crate::dataflow`], and the
//! hot-path reachability in [`hot`]) adds three more:
//!
//! * [`hot_alloc`] — no per-iteration allocation inside a loop of any
//!   function reachable from an `sjc_par` entry-point closure or a
//!   `crates/bench` kernel;
//! * [`loop_invariant`] — calls with all-loop-invariant arguments inside
//!   hot loops (warning: hoist them out);
//! * [`unit_flow`] — no `+`/`-` arithmetic mixing `*_ns`/`*_bytes`/count
//!   bindings, and no non-nanosecond value reaching a `*_ns` sink.
//!
//! The interprocedural layer ([`crate::summaries`]: one bottom-up SCC
//! fixpoint computing may-panic, purity and unit facts per function) adds
//! four more:
//!
//! * [`panic_path`] — `pub` simulation API must not *transitively* reach a
//!   panic site; the diagnostic carries the full call chain;
//! * [`interproc_unit_flow`] — a call's returned unit (`_ns`/`_bytes`/
//!   count, inferred through the callee's body) must not mix with a
//!   different unit or flow into a differently-united sink or parameter;
//! * [`cache_purity`] — everything reachable from a memoized seam
//!   (`generate_cached` and friends) must be a pure function of its inputs;
//! * [`scoped_spawn`] — no direct `std::thread::scope`/`spawn` outside
//!   `crates/par`: thread dispatch goes through the persistent pool's
//!   entry points, not per-call scoped spawns;
//! * [`stale_suppression`] — audited allow comments must still cover a
//!   finding (warning: delete or re-justify dead waivers).
//!
//! Suppression works exactly as for the line rules: an inline allow
//! comment naming the rule, with a reason, on (or directly above) the
//! reported line.

pub mod cache_purity;
pub mod entropy;
pub mod error_flow;
pub(crate) mod hot;
pub mod hot_alloc;
pub mod interproc_unit_flow;
pub mod loop_invariant;
pub mod panic_path;
pub mod par_closure;
pub mod scoped_spawn;
pub mod stale_suppression;
pub mod unit_flow;

use std::io;
use std::path::Path;
use std::time::Duration;

use crate::callgraph;
use crate::items::FileModel;
use crate::summaries::Summaries;
use crate::{Rule, Violation};

/// Wall time spent in one named stage of [`analyze_workspace_timed`].
#[derive(Debug, Clone)]
pub struct PassTiming {
    pub name: &'static str,
    pub wall: Duration,
}

/// Reads the host monotonic clock for `--timings`.
pub(crate) fn stamp() -> std::time::Instant {
    // sjc-lint: allow(bench-isolation) — timings measure the analyzer itself, not simulated work
    std::time::Instant::now()
}

/// Runs every cross-file pass over the workspace rooted at `root` and
/// returns the unsuppressed violations, sorted by path and line.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    Ok(analyze_workspace_timed(root)?.0)
}

/// [`analyze_workspace`] plus per-stage wall times (the `--timings` flag).
pub fn analyze_workspace_timed(root: &Path) -> io::Result<(Vec<Violation>, Vec<PassTiming>)> {
    let files = crate::workspace_files(root)?;
    Ok(analyze_files(&files))
}

/// The whole pipeline over an in-memory file set. Split from the I/O so the
/// order-independence tests can drive it with permuted file lists.
pub(crate) fn analyze_files(files: &[(String, String)]) -> (Vec<Violation>, Vec<PassTiming>) {
    let mut timings = Vec::new();

    let t = stamp();
    let mut models = Vec::with_capacity(files.len());
    let mut allows = Vec::with_capacity(files.len());
    let mut starts = Vec::with_capacity(files.len());
    for (rel, source) in files {
        models.push(FileModel::build(rel, source));
        allows.push(crate::allows_for(source));
        starts.push(crate::stmt_starts(source));
    }
    let graph = callgraph::build(&models);
    timings.push(PassTiming { name: "model+callgraph", wall: t.elapsed() });

    // The interprocedural summaries trust panic sites whose line carries an
    // audited allow for either the syntactic or the interprocedural panic
    // rule — one audit covers both layers.
    let t = stamp();
    let audited = |fi: usize, line: usize| {
        crate::is_suppressed(&allows[fi], &starts[fi], Rule::NoPanicInLib, line)
            || crate::is_suppressed(&allows[fi], &starts[fi], Rule::PanicPath, line)
    };
    let sums = Summaries::compute_with_audit(&models, &graph, &audited);
    timings.push(PassTiming { name: "summaries", wall: t.elapsed() });

    let mut out = Vec::new();
    let mut timed = |name: &'static str, vs: Vec<Violation>, t0: std::time::Instant| {
        timings.push(PassTiming { name, wall: t0.elapsed() });
        vs
    };

    let t = stamp();
    out.extend(timed("entropy", entropy::run(&models, &graph), t));
    let t = stamp();
    out.extend(timed("par-closure", par_closure::run(&models), t));
    let t = stamp();
    out.extend(timed("error-flow", error_flow::run(&models), t));
    let t = stamp();
    let hot_set = hot::compute(&models, &graph);
    out.extend(timed("hot-alloc", hot_alloc::run(&models, &graph, &hot_set), t));
    let t = stamp();
    out.extend(timed("loop-invariant", loop_invariant::run(&models, &graph, &hot_set), t));
    let t = stamp();
    out.extend(timed("unit-flow", unit_flow::run(&models), t));
    let t = stamp();
    out.extend(timed("panic-path", panic_path::run(&models, &graph, &sums), t));
    let t = stamp();
    out.extend(timed("interproc-unit-flow", interproc_unit_flow::run(&models, &graph, &sums), t));
    let t = stamp();
    out.extend(timed("cache-purity", cache_purity::run(&models, &graph, &sums), t));
    let t = stamp();
    out.extend(timed("scoped-spawn", scoped_spawn::run(&models), t));

    // Stale-suppression compares every allow against the *pre-suppression*
    // findings of both layers, so it runs after every other pass and before
    // the suppression filter below.
    let t = stamp();
    let mut raw = out.clone();
    for (rel, source) in files {
        raw.extend(crate::check_file_raw(rel, source));
    }
    out.extend(timed(
        "stale-suppression",
        stale_suppression::run(&models, &allows, &starts, &raw, &sums.consumed_audits),
        t,
    ));

    // Apply suppressions: pass findings honor the same audited allow
    // comments as the line rules.
    out.retain(|v| {
        let Some(idx) = models.iter().position(|m| m.rel_path == v.path) else {
            return true;
        };
        !crate::is_suppressed(&allows[idx], &starts[idx], v.rule, v.line)
    });

    out.sort_by(|a, b| (&a.path, a.line, a.rule.name()).cmp(&(&b.path, b.line, b.rule.name())));
    (out, timings)
}

/// File-visit-order independence: the SCC fixpoint in [`crate::summaries`]
/// and every pass built on it must produce identical results no matter how
/// the directory walk happens to order the sources. Seeded property test
/// (`sjc-testkit`, no external deps) over random permutations of a corpus
/// that includes direct recursion, cross-file mutual recursion, unit facts
/// and a memoized seam — the shapes whose summaries depend on fixpoint
/// iteration rather than a single bottom-up sweep.
#[cfg(test)]
mod order_independence {
    use std::collections::BTreeMap;

    use super::analyze_files;
    use crate::callgraph;
    use crate::items::FileModel;
    use crate::summaries::Summaries;

    /// Direct recursion reaching a panic, mutual recursion across files
    /// reaching a panic, an interprocedural unit fact, and an impure
    /// function behind a memoized seam.
    fn corpus() -> Vec<(String, String)> {
        let files: &[(&str, &str)] = &[
            (
                "crates/core/src/rec.rs",
                "pub fn spin(n: u64) -> u64 {\n    if n == 0 {\n        base()\n    } else {\n        spin(n - 1)\n    }\n}\nfn base() -> u64 {\n    let v: Vec<u64> = Vec::new();\n    v.iter().next().copied().unwrap()\n}\n",
            ),
            (
                "crates/cluster/src/ping.rs",
                "pub fn ping(n: u64) -> u64 {\n    pong(n)\n}\n",
            ),
            (
                "crates/cluster/src/pong.rs",
                "pub fn pong(n: u64) -> u64 {\n    if n == 0 {\n        seed().unwrap()\n    } else {\n        ping(n - 1)\n    }\n}\nfn seed() -> Option<u64> {\n    None\n}\n",
            ),
            (
                "crates/core/src/units.rs",
                "pub fn total(task_ns: u64, n: u64) -> u64 {\n    task_ns + moved(n)\n}\nfn moved(n: u64) -> u64 {\n    let out_bytes = n;\n    out_bytes\n}\n",
            ),
            (
                "crates/data/src/cache.rs",
                "pub fn generate_cached(k: u64) -> u64 {\n    build(k)\n}\n",
            ),
            (
                "crates/data/src/catalog.rs",
                "pub fn build(k: u64) -> u64 {\n    stamp(k)\n}\nfn stamp(k: u64) -> u64 {\n    k ^ COUNTER.fetch_add(1, Ordering::Relaxed)\n}\n",
            ),
        ];
        files.iter().map(|&(p, s)| (p.to_string(), s.to_string())).collect()
    }

    /// Order-insensitive rendering of every per-function summary fact,
    /// keyed by `(path, fn name)` instead of the order-dependent `FnId`.
    fn summary_facts(files: &[(String, String)]) -> BTreeMap<(String, String), String> {
        let models: Vec<FileModel> = files.iter().map(|(p, s)| FileModel::build(p, s)).collect();
        let graph = callgraph::build(&models);
        let sums = Summaries::compute(&models, &graph);
        let mut out = BTreeMap::new();
        for (id, &(fi, gi)) in graph.fns.iter().enumerate() {
            let m = &models[fi];
            let f = &m.fns[gi];
            let chain = super::panic_path::describe_chain(&models, &graph, &sums.may_panic, id).0;
            let fact = format!(
                "panic={chain:?} impure={} ret={:?} params={:?}",
                sums.impure[id].is_some(),
                sums.ret_unit[id],
                sums.params[id],
            );
            out.insert((m.rel_path.clone(), f.name.clone()), fact);
        }
        out
    }

    #[test]
    fn fixpoint_converges_identically_under_any_file_order() {
        let baseline_files = corpus();
        let baseline_violations = analyze_files(&baseline_files).0;
        let baseline_facts = summary_facts(&baseline_files);
        // The corpus exercises the fixpoint: the recursive chains must be
        // reported (an empty baseline would make the permutation check
        // vacuous).
        assert!(
            baseline_violations.iter().any(|v| v.message.contains("spin")),
            "{baseline_violations:?}"
        );
        assert!(
            baseline_violations.iter().any(|v| v.message.contains("pong")),
            "{baseline_violations:?}"
        );

        sjc_testkit::cases(0x51AC_0DDE, 32, |rng| {
            // Fisher–Yates over the file list.
            let mut files = corpus();
            for i in (1..files.len()).rev() {
                files.swap(i, rng.usize_in(0..i + 1));
            }
            assert_eq!(analyze_files(&files).0, baseline_violations);
            assert_eq!(summary_facts(&files), baseline_facts);
        });
        // The two boundary orders a walk is most likely to produce.
        let mut rev = corpus();
        rev.reverse();
        assert_eq!(analyze_files(&rev).0, baseline_violations);
        assert_eq!(summary_facts(&rev), baseline_facts);
    }
}
