//! Unit-flow pass: no arithmetic that mixes physical units.
//!
//! The simulation's numbers all travel as bare `u64`s — simulated
//! nanoseconds (`sim_ns`, `*_ns`), byte volumes (`*_bytes`), and counts
//! (`*_count`, `*_attempts`). The type system cannot tell them apart, so a
//! `total_ns + shuffle_bytes` typo compiles and quietly corrupts a
//! simulated result. This pass derives a unit for every binding — from its
//! name suffix, or through `let` chains via the [`crate::dataflow`]
//! machinery — and flags
//!
//! * `+`/`-`/`+=`/`-=` between two operands of *different known* units
//!   (multiplication and division are exempt: `bytes * ns_per_byte` is how
//!   conversions are spelled), and
//! * a non-nanosecond value reaching a `*_ns`/`sim_ns` sink through a plain
//!   `=`/`: ` assignment whose right-hand side has no converting `*`/`/`.
//!
//! Name-derived units win over flow-derived ones (a binding named
//! `total_ns` *is* nanoseconds, whatever fed it — the mixing is flagged at
//! the arithmetic, not at the rename), and identifiers containing `per`
//! carry no unit: `ns_per_byte` is a rate, not a byte count.

use crate::dataflow::{self, Flow, LetBinding};
use crate::items::FileModel;
use crate::lexer::{Tok, TokKind};
use crate::{Rule, Violation};

/// The units the simulation's identifiers encode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    Ns,
    Bytes,
    Count,
}

impl Unit {
    pub fn name(self) -> &'static str {
        match self {
            Unit::Ns => "ns",
            Unit::Bytes => "bytes",
            Unit::Count => "count",
        }
    }
}

/// The unit an identifier's *name* declares, from its last `_`-segment.
/// `per`-containing names are rates and carry no unit.
pub fn unit_of_name(name: &str) -> Option<Unit> {
    if name.split('_').any(|seg| seg == "per") {
        return None;
    }
    match name.rsplit('_').next().unwrap_or(name) {
        "ns" => Some(Unit::Ns),
        "bytes" | "byte" => Some(Unit::Bytes),
        "count" | "counts" | "attempts" => Some(Unit::Count),
        _ => None,
    }
}

pub fn run(models: &[FileModel]) -> Vec<Violation> {
    let mut out = Vec::new();
    for m in models {
        if m.harness {
            continue;
        }
        for f in &m.fns {
            if f.in_test {
                continue;
            }
            let Some((s, e)) = f.body else { continue };
            check_body(m, s, e, &mut out);
        }
    }
    out
}

/// The unit of the identifier at token `k`, resolved name-first, then
/// through the flow facts. Field chains use the field's own name (`e.
/// wasted_ns` is nanoseconds regardless of what `e` is).
pub(crate) fn unit_at(toks: &[Tok], k: usize, flow: &Flow<Unit>) -> Option<Unit> {
    let t = &toks[k];
    if t.kind != TokKind::Ident {
        return None;
    }
    unit_of_name(&t.text).or_else(|| {
        // Flow facts apply to whole bindings, not fields of one.
        let is_field = k >= 1 && toks[k - 1].is_op(".");
        if is_field {
            None
        } else {
            flow.get(&t.text).copied()
        }
    })
}

fn check_body(m: &FileModel, start: usize, end: usize, out: &mut Vec<Violation>) {
    let toks = &m.toks;
    let end = end.min(toks.len().saturating_sub(1));
    let bindings = dataflow::let_bindings(toks, start, end);
    let mut next_binding = 0usize;
    let mut flow: Flow<Unit> = Flow::new();

    let mut k = start;
    while k <= end {
        // Apply every binding whose initializer we have fully walked past,
        // so checks inside an initializer use the pre-binding facts.
        while next_binding < bindings.len() && bindings[next_binding].rhs.1 < k {
            apply_binding(toks, &bindings[next_binding], &mut flow);
            next_binding += 1;
        }
        let t = &toks[k];

        // Mixing: `a_ns + b_bytes`, `acc_ns -= delta_bytes`, …
        if t.kind == TokKind::Op
            && matches!(t.text.as_str(), "+" | "-" | "+=" | "-=")
            && k > start
            && k < end
        {
            let lhs = unit_at(toks, k - 1, &flow);
            let rhs = unit_at(toks, k + 1, &flow);
            if let (Some(l), Some(r)) = (lhs, rhs) {
                if l != r {
                    out.push(Violation::new(
                        Rule::UnitFlow,
                        &m.rel_path,
                        t.line,
                        format!(
                            "`{}` ({}) and `{}` ({}) are combined with `{}` — different units \
                             never add; convert explicitly (multiply by a rate) first",
                            toks[k - 1].text,
                            l.name(),
                            toks[k + 1].text,
                            r.name(),
                            t.text
                        ),
                    ));
                }
            }
        }

        // Sink: `…_ns = <expr>` / `sim_ns: <expr>` receiving a known
        // non-nanosecond operand with no converting `*`/`/` in the
        // expression.
        if t.kind == TokKind::Ident
            && unit_of_name(&t.text) == Some(Unit::Ns)
            && toks.get(k + 1).is_some_and(|n| n.is_op("=") || n.is_op(":"))
        {
            if let Some((bad_tok, bad_unit)) = offending_rhs(toks, k + 2, end, &flow) {
                out.push(Violation::new(
                    Rule::UnitFlow,
                    &m.rel_path,
                    t.line,
                    format!(
                        "`{}` ({}) flows into `{}` — a nanosecond sink must receive \
                         nanoseconds; convert with an explicit rate first",
                        toks[bad_tok].text,
                        bad_unit.name(),
                        t.text
                    ),
                ));
            }
        }
        k += 1;
    }
}

/// Scans the value expression starting at `from` (after `=`/`:`) up to a
/// `,`/`;`/closer at depth 0. Returns the first operand with a known
/// non-`Ns` unit — unless a `*`/`/` at depth 0 marks the expression as a
/// conversion, or any operand is already `Ns` (then the `+`/`-` mixing
/// check owns the finding).
fn offending_rhs(
    toks: &[Tok],
    from: usize,
    end: usize,
    flow: &Flow<Unit>,
) -> Option<(usize, Unit)> {
    let mut depth = 0i64;
    let mut first_bad: Option<(usize, Unit)> = None;
    let mut k = from;
    while k <= end {
        let t = &toks[k];
        if t.is_op("(") || t.is_op("[") || t.is_op("{") {
            depth += 1;
        } else if t.is_op(")") || t.is_op("]") || t.is_op("}") {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && (t.is_op(",") || t.is_op(";")) {
            break;
        } else if depth == 0 && (t.is_op("*") || t.is_op("/")) {
            return None; // conversion expression
        } else if depth == 0 && t.kind == TokKind::Ident {
            match unit_at(toks, k, flow) {
                Some(Unit::Ns) => return None,
                Some(u) if first_bad.is_none() => first_bad = Some((k, u)),
                _ => {}
            }
        }
        k += 1;
    }
    first_bad
}

/// Applies one `let` binding to the fact environment: the bound name takes
/// its name-declared unit if it has one, else the unit the initializer
/// propagates — a single known unit among its top-level operands, with
/// `*`/`/` (conversions) clearing the fact.
pub(crate) fn apply_binding(toks: &[Tok], b: &LetBinding, flow: &mut Flow<Unit>) {
    if b.names.len() != 1 {
        // Tuple patterns: positional matching is more machinery than the
        // workspace needs; unmodeled bindings just carry no fact.
        for n in &b.names {
            flow.bind(n, unit_of_name(n));
        }
        return;
    }
    let name = &b.names[0];
    if let Some(u) = unit_of_name(name) {
        flow.bind(name, Some(u));
        return;
    }
    let (rs, re) = b.rhs;
    let mut depth = 0i64;
    let mut derived: Option<Unit> = None;
    for k in rs..=re {
        let t = &toks[k];
        if t.is_op("(") || t.is_op("[") {
            depth += 1;
        } else if t.is_op(")") || t.is_op("]") {
            depth -= 1;
        } else if depth <= 0 && (t.is_op("*") || t.is_op("/")) {
            derived = None; // a conversion: the result's unit is not an operand's
            break;
        } else if depth <= 0 && t.kind == TokKind::Ident {
            if let Some(u) = unit_at(toks, k, flow) {
                match derived {
                    None => derived = Some(u),
                    Some(d) if d != u => {
                        // Mixed rhs: the arithmetic check reports it; the
                        // binding itself gets no trustworthy unit.
                        derived = None;
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
    flow.bind(name, derived);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> Vec<Violation> {
        run(&[FileModel::build("crates/cluster/src/x.rs", src)])
    }

    #[test]
    fn direct_mixing_fires() {
        let vs = analyze(
            "fn f(task_ns: u64, shuffle_bytes: u64) -> u64 {\n    task_ns + shuffle_bytes\n}\n",
        );
        assert!(
            vs.iter().any(|v| v.rule == Rule::UnitFlow && v.message.contains("shuffle_bytes")),
            "{vs:?}"
        );
        let vs = analyze(
            "fn f(total_ns: &mut u64, read_bytes: u64) {\n    *total_ns += read_bytes;\n}\n",
        );
        assert!(vs.iter().any(|v| v.rule == Rule::UnitFlow), "{vs:?}");
    }

    #[test]
    fn flow_through_let_chains_fires() {
        let vs = analyze(
            "fn f(task_ns: u64, read_bytes: u64) -> u64 {\n    let moved = read_bytes;\n    task_ns + moved\n}\n",
        );
        assert!(vs.iter().any(|v| v.message.contains("moved")), "{vs:?}");
    }

    #[test]
    fn same_unit_and_conversions_are_clean() {
        for ok in [
            "fn f(a_ns: u64, b_ns: u64) -> u64 { a_ns + b_ns }\n",
            "fn f(read_bytes: u64, ns_per_byte: u64) -> u64 { read_bytes * ns_per_byte }\n",
            "fn f(read_bytes: u64, rate: u64) -> u64 {\n    let cost_ns = read_bytes * rate;\n    cost_ns\n}\n",
            "fn f(a_count: u64, b_count: u64) -> u64 { a_count - b_count }\n",
            "fn f(xs: &[u64]) -> u64 { xs.len() as u64 + 1 }\n",
        ] {
            assert!(analyze(ok).is_empty(), "{ok}");
        }
    }

    #[test]
    fn ns_sink_rejects_unconverted_bytes() {
        let vs = analyze("fn f(r: &mut R, read_bytes: u64) {\n    r.sim_ns = read_bytes;\n}\n");
        assert!(vs.iter().any(|v| v.message.contains("sim_ns")), "{vs:?}");
        // A converted value is fine.
        let vs = analyze(
            "fn f(r: &mut R, read_bytes: u64, ns_per_byte: u64) {\n    r.sim_ns = read_bytes * ns_per_byte;\n}\n",
        );
        assert!(vs.is_empty(), "{vs:?}");
        // Struct-literal field init is a sink too.
        let vs =
            analyze("fn f(read_bytes: u64) -> R {\n    R { sim_ns: read_bytes, other: 0 }\n}\n");
        assert!(vs.iter().any(|v| v.message.contains("sim_ns")), "{vs:?}");
    }

    #[test]
    fn name_derived_unit_wins_over_flow() {
        // `total_ns` *is* ns by name: assigning bytes into it is the sink
        // finding; downstream `total_ns + x_ns` must NOT also fire.
        let vs = analyze(
            "fn f(read_bytes: u64, x_ns: u64) -> u64 {\n    let total_ns = read_bytes;\n    total_ns + x_ns\n}\n",
        );
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("total_ns"), "{vs:?}");
    }

    #[test]
    fn rebinding_kills_stale_facts() {
        let vs = analyze(
            "fn f(task_ns: u64, read_bytes: u64, plain: u64) -> u64 {\n    let moved = read_bytes;\n    let moved = plain;\n    task_ns + moved\n}\n",
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn test_code_is_out_of_scope() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(a_ns: u64, b_bytes: u64) -> u64 { a_ns + b_bytes }\n}\n";
        assert!(analyze(src).is_empty(), "{src}");
    }
}
