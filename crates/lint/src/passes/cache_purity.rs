//! Cache-purity pass: memoized seams only reach pure functions.
//!
//! PR 2's process-wide dataset cache (`generate_cached` in
//! `crates/data/src/cache.rs`) returns the stored value on a key hit — so
//! whatever computed that value must be a pure function of the key, or two
//! runs (one warm, one cold) diverge and the determinism pin breaks. This
//! pass walks forward from every memoized entry point (a non-test function
//! whose name contains `cached` or `memo`) over the call graph and flags
//! every reached function whose impurity is **direct** (its own body reads
//! the clock/entropy or mutates a static — see [`crate::summaries`]).
//!
//! Two deliberate scope cuts:
//!
//! * the seam's own file is exempt — the cache bookkeeping itself
//!   (`CACHE.get_or_init`, hit/miss counters, lock recovery) is impure by
//!   construction and audited by the cache's unit tests;
//! * only *directly* impure functions are reported, at their declaration —
//!   reporting every transitively-impure hop would turn one root cause into
//!   a cascade. The related locations carry the seam → function chain.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::items::FileModel;
use crate::summaries::{Cause, Summaries};
use crate::{Related, Rule, Violation};

/// True when `name` marks a memoized entry point.
fn is_memo_seam(name: &str) -> bool {
    name.contains("cached") || name.contains("memo")
}

pub fn run(models: &[FileModel], graph: &CallGraph, sums: &Summaries) -> Vec<Violation> {
    let mut out = Vec::new();
    for (seed, &(fi, gi)) in graph.fns.iter().enumerate() {
        let m = &models[fi];
        let f = &m.fns[gi];
        if m.harness || f.in_test || !is_memo_seam(&f.name) {
            continue;
        }
        check_seam(models, graph, sums, seed, &mut out);
    }
    out
}

fn check_seam(
    models: &[FileModel],
    graph: &CallGraph,
    sums: &Summaries,
    seed: usize,
    out: &mut Vec<Violation>,
) {
    let (sfi, sgi) = graph.fns[seed];
    let seam_file = &models[sfi].rel_path;
    let seam_name = &models[sfi].fns[sgi].name;

    // Level-synchronous BFS with stable-key parent selection, so the
    // reported chain does not depend on file visit order.
    let stable_key = |f: usize| {
        let (fi, gi) = graph.fns[f];
        (&models[fi].rel_path, models[fi].fns[gi].line, &models[fi].fns[gi].name)
    };
    let n = graph.fns.len();
    // parent[f] = (caller, call line) on a shortest seam→f path.
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[seed] = true;
    let mut level = vec![seed];
    let mut order: Vec<usize> = Vec::new();
    while !level.is_empty() {
        let mut next = BTreeSet::new();
        for &v in &level {
            for e in &graph.edges[v] {
                if !seen[e.callee] {
                    next.insert(e.callee);
                }
            }
        }
        for &f in &next {
            let best = level
                .iter()
                .flat_map(|&v| graph.edges[v].iter().filter(|e| e.callee == f).map(move |e| (v, e)))
                .min_by_key(|&(v, e)| (stable_key(v), e.line, e.tok))
                .map(|(v, e)| (v, e.line));
            parent[f] = best;
            seen[f] = true;
        }
        level = next.into_iter().collect();
        order.extend(&level);
    }

    for &f in &order {
        let (fi, gi) = graph.fns[f];
        let m = &models[fi];
        if m.rel_path == *seam_file {
            continue; // the seam's own bookkeeping file
        }
        let item = &m.fns[gi];
        if item.in_test {
            continue;
        }
        let Some(Cause::Direct { what, line }) = &sums.impure[f] else { continue };

        // Chain: seam → … → f, by parent links (each strictly closer to the
        // seam), then the offending site inside f.
        let mut hops = Vec::new();
        let mut cur = f;
        while let Some((caller, call_line)) = parent[cur] {
            let (cfi, cgi) = graph.fns[cur];
            hops.push(Related {
                path: models[graph.fns[caller].0].rel_path.clone(),
                line: call_line,
                note: format!("calls `{}`", models[cfi].fns[cgi].name),
            });
            cur = caller;
        }
        hops.reverse();
        hops.push(Related { path: m.rel_path.clone(), line: *line, note: what.clone() });

        out.push(
            Violation::new(
                Rule::CachePurity,
                &m.rel_path,
                item.line,
                format!(
                    "`{}` is reachable from the memoized seam `{seam_name}` but is not \
                     pure: {what} (line {line}) — the cache key must fully determine \
                     the cached value",
                    item.name
                ),
            )
            .with_related(hops),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;

    fn check(files: &[(&str, &str)]) -> Vec<Violation> {
        let models: Vec<FileModel> = files.iter().map(|(p, s)| FileModel::build(p, s)).collect();
        let graph = callgraph::build(&models);
        let sums = Summaries::compute(&models, &graph);
        run(&models, &graph, &sums)
    }

    #[test]
    fn impure_fn_reached_from_seam_is_reported_with_chain() {
        let vs = check(&[
            (
                "crates/data/src/cache.rs",
                "pub fn generate_cached(k: u64) -> u64 {\n    HITS.fetch_add(1, Ordering::Relaxed);\n    build(k)\n}\n",
            ),
            (
                "crates/data/src/catalog.rs",
                "pub fn build(k: u64) -> u64 { stamp(k) }\nfn stamp(k: u64) -> u64 { k ^ Instant::now() }\n",
            ),
        ]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        let v = &vs[0];
        assert_eq!(v.path, "crates/data/src/catalog.rs");
        assert!(v.message.contains("`stamp`") && v.message.contains("generate_cached"), "{v:?}");
        // Chain: seam's call to build, build's call to stamp, the site.
        assert_eq!(v.related.len(), 3, "{v:?}");
        assert!(v.related[2].note.contains("Instant::now"), "{v:?}");
    }

    #[test]
    fn seam_file_bookkeeping_is_exempt_and_pure_trees_are_clean() {
        let vs = check(&[
            (
                "crates/data/src/cache.rs",
                "pub fn generate_cached(k: u64) -> u64 {\n    MISSES.fetch_add(1, Ordering::Relaxed);\n    build(k)\n}\n",
            ),
            ("crates/data/src/catalog.rs", "pub fn build(k: u64) -> u64 { k.wrapping_mul(3) }\n"),
        ]);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn transitively_impure_hops_are_not_cascaded() {
        // Only `stamp` (directly impure) is reported, not `build` (impure
        // via `stamp`).
        let vs = check(&[
            ("crates/data/src/cache.rs", "pub fn generate_cached(k: u64) -> u64 { build(k) }\n"),
            (
                "crates/data/src/catalog.rs",
                "pub fn build(k: u64) -> u64 { stamp(k) }\nfn stamp(k: u64) -> u64 { COUNTER.fetch_add(1, Ordering::Relaxed) }\n",
            ),
        ]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("`stamp`"), "{vs:?}");
    }
}
