//! Par-closure race pass.
//!
//! Closures handed to the `sjc_par` runtime run concurrently on worker
//! threads; the whole determinism story (1-vs-8-thread bit-identity, pinned
//! in `tests/determinism.rs`) rests on them being pure functions of their
//! arguments. This pass is the static counterpart: inside any closure
//! passed to a `sjc_par` entry point it forbids
//!
//! * mutating a captured binding (`total += x`, `out.push(p)`, `&mut cap`),
//! * shared-mutability cells (`Cell`, `RefCell`) and relaxed atomics
//!   (`Ordering::Relaxed`) — both launder mutation past `Fn + Sync`,
//! * `unsafe` blocks — the only door to `static mut` and raw-pointer
//!   writes (the runtime's own internals are exempt; its disjointness
//!   invariants are proven by the determinism tests, not by this pass).
//!
//! Bindings *inside* the closure (params, `let`, `for` patterns, match
//! arms, nested-closure params) are collected first; only mutation whose
//! base identifier is not locally bound — i.e. a capture — fires.

use std::collections::BTreeSet;

use crate::items::FileModel;
use crate::lexer::{Tok, TokKind};
use crate::{Rule, Violation};

/// Entry points whose closure arguments run on worker threads.
const PAR_ENTRIES: &[&str] = &[
    "par_map",
    "par_map_budget",
    "par_map_flat",
    "par_map_flat_budget",
    "par_sort_by",
    "par_sort_by_budget",
    "par_reduce",
    "par_reduce_budget",
    "par_chunks_mut",
    "par_chunks_mut_budget",
    "join",
    "join_budget",
];

/// Mutating methods whose receiver must be closure-local.
const MUTATING_METHODS: &[&str] =
    &["push", "push_str", "extend", "insert", "remove", "append", "clear", "borrow_mut"];

const ASSIGN_OPS: &[&str] = &["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="];

pub fn run(models: &[FileModel]) -> Vec<Violation> {
    let mut out = Vec::new();
    for m in models {
        // The runtime's own internals claim disjoint ranges through raw
        // pointers by design; everything else goes through this pass.
        if m.harness || m.krate == "par" {
            continue;
        }
        let toks = &m.toks;
        let mut i = 0usize;
        while i < toks.len() {
            if !is_par_call(m, i) || m.in_test_at(i) {
                i += 1;
                continue;
            }
            // Argument range: `(` at i+1 to its match.
            let open = i + 1;
            let close = match matching(toks, open, "(", ")") {
                Some(c) => c,
                None => break,
            };
            let entry = toks[i].text.clone();
            let mut j = open + 1;
            while j < close {
                if toks[j].is_op("|") || toks[j].is_op("||") {
                    let (body_start, body_end, params) = closure_extent(toks, j, close);
                    check_closure(m, &entry, body_start, body_end, &params, &mut out);
                    j = body_end + 1;
                } else {
                    j += 1;
                }
            }
            i = close + 1;
        }
    }
    out
}

/// True when token `i` heads a call to a `sjc_par` entry point. Bare names
/// count when they are unmistakable (`par_*`) or demonstrably imported from
/// sjc_par; `join` additionally requires qualification or an import, so
/// `path.join(…)` and the spatial-join functions never match. Shared with
/// the hot-path passes, whose root set is "closures handed to these entry
/// points".
pub(crate) fn is_par_call(m: &FileModel, i: usize) -> bool {
    let toks = &m.toks;
    let t = &toks[i];
    if t.kind != TokKind::Ident
        || !PAR_ENTRIES.contains(&t.text.as_str())
        || !toks.get(i + 1).is_some_and(|n| n.is_op("("))
    {
        return false;
    }
    if i > 0 && (toks[i - 1].is_op(".") || toks[i - 1].is_ident("fn")) {
        return false; // method call or definition, not a runtime dispatch
    }
    let qualified = i >= 2
        && toks[i - 1].is_op("::")
        && (toks[i - 2].is_ident("sjc_par") || toks[i - 2].is_ident("par"));
    if qualified {
        return true;
    }
    if i > 0 && toks[i - 1].is_op("::") {
        return false; // qualified by some other module
    }
    t.text.starts_with("par_")
        || (m.use_crates.contains("sjc_par") && m.use_names.contains(&t.text))
}

/// Finds the matching close token for the opener at `open`.
fn matching(toks: &[Tok], open: usize, op: &str, cl: &str) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_op(op) {
            depth += 1;
        } else if t.is_op(cl) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// From the `|`/`||` at `j`, returns (body_start, body_end, param idents).
/// A braced body runs to its matching `}`; an expression body runs to the
/// next `,` at argument depth or to `arg_close`.
pub(crate) fn closure_extent(
    toks: &[Tok],
    j: usize,
    arg_close: usize,
) -> (usize, usize, BTreeSet<String>) {
    let mut params = BTreeSet::new();
    let mut k = j + 1;
    if toks[j].is_op("|") {
        // Collect everything up to the closing `|` — pattern idents and
        // type-annotation idents both land in the bound set, which errs in
        // the quiet direction.
        while k < toks.len() && !toks[k].is_op("|") {
            if toks[k].kind == TokKind::Ident {
                params.insert(toks[k].text.clone());
            }
            k += 1;
        }
        k += 1; // past the closing `|`
    }
    // `|x| -> T { … }` return annotations are rare; skip to the body.
    if toks.get(k).is_some_and(|t| t.is_op("->")) {
        while k < toks.len() && !toks[k].is_op("{") && !toks[k].is_op(",") {
            k += 1;
        }
    }
    if toks.get(k).is_some_and(|t| t.is_op("{")) {
        let end = matching(toks, k, "{", "}").unwrap_or(arg_close);
        return (k, end, params);
    }
    // Expression body: to the `,` at this nesting level or the call close.
    let mut depth = 0i64;
    let start = k;
    while k < arg_close {
        let t = &toks[k];
        if t.is_op("(") || t.is_op("[") || t.is_op("{") {
            depth += 1;
        } else if t.is_op(")") || t.is_op("]") || t.is_op("}") {
            depth -= 1;
        } else if depth == 0 && t.is_op(",") {
            break;
        }
        k += 1;
    }
    (start, k.saturating_sub(1).max(start), params)
}

/// Idents bound inside `toks[start..=end]`: `let` patterns, `for` patterns,
/// match-arm patterns (the span before each `=>`), nested closure params.
fn bound_idents(
    toks: &[Tok],
    start: usize,
    end: usize,
    seed: &BTreeSet<String>,
) -> BTreeSet<String> {
    let mut bound = seed.clone();
    let mut k = start;
    while k <= end {
        let t = &toks[k];
        if t.is_ident("let") {
            let mut j = k + 1;
            while j <= end && !toks[j].is_op("=") && !toks[j].is_op(";") {
                if toks[j].kind == TokKind::Ident {
                    bound.insert(toks[j].text.clone());
                }
                j += 1;
            }
            k = j;
        } else if t.is_ident("for") {
            let mut j = k + 1;
            while j <= end && !toks[j].is_ident("in") {
                if toks[j].kind == TokKind::Ident {
                    bound.insert(toks[j].text.clone());
                }
                j += 1;
            }
            k = j;
        } else if t.is_op("=>") {
            // Match arm: bind every ident between the previous arm
            // delimiter and this `=>` (patterns only contain binders, path
            // segments, and literals — over-binding path segments is the
            // quiet direction).
            let mut j = k;
            while j > start {
                j -= 1;
                let p = &toks[j];
                if p.is_op(",") || p.is_op("{") || p.is_op("=>") {
                    break;
                }
                if p.kind == TokKind::Ident {
                    bound.insert(p.text.clone());
                }
            }
            k += 1;
        } else if t.is_op("|") || t.is_op("||") {
            // Nested closure params.
            if t.is_op("|") {
                let mut j = k + 1;
                while j <= end && !toks[j].is_op("|") {
                    if toks[j].kind == TokKind::Ident {
                        bound.insert(toks[j].text.clone());
                    }
                    j += 1;
                }
                k = j;
            }
            k += 1;
            continue;
        } else {
            k += 1;
            continue;
        }
        k += 1;
    }
    bound
}

/// Walks a field chain (`a.b.c`) backwards from the token before `at`,
/// returning the base identifier.
fn chain_base(toks: &[Tok], at: usize) -> Option<String> {
    let mut k = at;
    loop {
        if toks[k].kind != TokKind::Ident && toks[k].kind != TokKind::Num {
            return None;
        }
        if k >= 2 && toks[k - 1].is_op(".") {
            k -= 2;
            continue;
        }
        return (toks[k].kind == TokKind::Ident).then(|| toks[k].text.clone());
    }
}

fn check_closure(
    m: &FileModel,
    entry: &str,
    start: usize,
    end: usize,
    params: &BTreeSet<String>,
    out: &mut Vec<Violation>,
) {
    let toks = &m.toks;
    let end = end.min(toks.len().saturating_sub(1));
    let bound = bound_idents(toks, start, end, params);
    let mut emit = |line: usize, what: String| {
        out.push(Violation::new(
            Rule::ParClosureRace,
            &m.rel_path,
            line,
            format!(
                "closure passed to `{entry}` {what} — par closures must be pure functions of \
                 their arguments (see tests/determinism.rs: results are pinned bit-identical \
                 at 1 and 8 threads)"
            ),
        ));
    };
    let mut k = start;
    while k <= end {
        let t = &toks[k];
        if t.is_ident("RefCell") || t.is_ident("Cell") {
            emit(t.line, format!("uses `{}` (shared mutability smuggled past Fn + Sync)", t.text));
        } else if t.is_ident("Ordering")
            && toks.get(k + 1).is_some_and(|n| n.is_op("::"))
            && toks.get(k + 2).is_some_and(|n| n.is_ident("Relaxed"))
        {
            emit(t.line, "uses a relaxed atomic (unsynchronized cross-thread state)".to_string());
            k += 3;
            continue;
        } else if t.is_ident("unsafe") {
            emit(
                t.line,
                "contains an `unsafe` block (raw-pointer / static-mut access cannot be \
                 verified race-free here)"
                    .to_string(),
            );
        } else if t.is_op("&")
            && toks.get(k + 1).is_some_and(|n| n.is_ident("mut"))
            && toks.get(k + 2).is_some_and(|n| n.kind == TokKind::Ident)
        {
            let name = &toks[k + 2].text;
            if !bound.contains(name) {
                emit(t.line, format!("takes `&mut {name}` to a captured binding"));
            }
            k += 3;
            continue;
        } else if t.is_op(".")
            && toks.get(k + 1).is_some_and(|n| {
                n.kind == TokKind::Ident && MUTATING_METHODS.contains(&n.text.as_str())
            })
            && toks.get(k + 2).is_some_and(|n| n.is_op("("))
            && k > start
        {
            if let Some(base) = chain_base(toks, k - 1) {
                if !bound.contains(&base) {
                    emit(
                        t.line,
                        format!(
                            "calls `{}.{}(…)` on a captured collection",
                            base,
                            toks[k + 1].text
                        ),
                    );
                }
            }
        } else if t.kind == TokKind::Op && ASSIGN_OPS.contains(&t.text.as_str()) && k > start {
            // Assignment to a captured place: walk the LHS chain back to
            // its base. `let x = …` never fires — `x` is in the bound set.
            if let Some(base) = chain_base(toks, k - 1) {
                if !bound.contains(&base) {
                    emit(t.line, format!("assigns to captured `{base}` (`{base} {} …`)", t.text));
                }
            }
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(path: &str, src: &str) -> Vec<Violation> {
        run(&[FileModel::build(path, src)])
    }

    #[test]
    fn captured_push_and_accumulator_fire() {
        let src = "fn f(parts: &[u64]) {\n    let mut out = Vec::new();\n    let mut total = 0u64;\n    sjc_par::par_map(parts, |p| {\n        out.push(*p);\n        total += *p;\n        *p\n    });\n}\n";
        let vs = analyze("crates/rdd/src/x.rs", src);
        assert!(vs.iter().any(|v| v.message.contains("out.push")), "{vs:?}");
        assert!(vs.iter().any(|v| v.message.contains("captured `total`")), "{vs:?}");
    }

    #[test]
    fn local_bindings_do_not_fire() {
        let src = "fn f(parts: &[Vec<u64>]) -> Vec<u64> {\n    sjc_par::par_map(parts, |p| {\n        let mut acc = 0u64;\n        for x in p.iter() {\n            acc += x;\n        }\n        let mut buf = Vec::new();\n        buf.push(acc);\n        buf[0]\n    })\n}\n";
        assert!(analyze("crates/rdd/src/x.rs", src).is_empty());
    }

    #[test]
    fn flat_map_buffer_param_is_bound() {
        let src = "fn f(parts: &[u64]) -> Vec<u64> {\n    sjc_par::par_map_flat(parts, |p, buf| {\n        buf.push(*p);\n    })\n}\n";
        assert!(analyze("crates/index/src/x.rs", src).is_empty());
    }

    #[test]
    fn refcell_relaxed_and_unsafe_fire() {
        for (frag, needle) in [
            ("c.borrow_mut().push(*p)", "borrow_mut"),
            ("n.fetch_add(1, Ordering::Relaxed)", "relaxed atomic"),
            ("unsafe { *ptr = *p }", "unsafe"),
        ] {
            let src = format!(
                "fn f(parts: &[u64], c: &RefCell<Vec<u64>>, n: &A, ptr: *mut u64) {{\n    sjc_par::par_map(parts, |p| {{ {frag}; *p }});\n}}\n"
            );
            let vs = analyze("crates/mapreduce/src/x.rs", &src);
            assert!(
                vs.iter().any(|v| v.message.contains(needle) || v.message.contains("RefCell")),
                "{frag}: {vs:?}"
            );
        }
    }

    #[test]
    fn unqualified_join_needs_an_import() {
        // `path.join(…)` and a locally defined `join(a, b)` must not match…
        let src = "fn f(a: P, b: P) { let c = a.join(b); join(a, b); }\nfn join(a: P, b: P) {}\n";
        assert!(analyze("crates/index/src/x.rs", src).is_empty());
        // …but an sjc_par-imported `join` does.
        let src =
            "use sjc_par::join;\nfn f(v: &mut V) {\n    join(|| v.left.push(1), || step());\n}\n";
        let vs = analyze("crates/index/src/x.rs", src);
        assert!(vs.iter().any(|v| v.message.contains("captured collection")), "{vs:?}");
    }

    #[test]
    fn comparator_closures_are_checked_too() {
        let src = "fn f(v: &mut [R]) {\n    let mut seen = Vec::new();\n    sjc_par::par_sort_by(v, |a, b| {\n        seen.push(a.id);\n        a.key.cmp(&b.key)\n    });\n}\n";
        let vs = analyze("crates/index/src/x.rs", src);
        assert!(vs.iter().any(|v| v.rule == Rule::ParClosureRace), "{vs:?}");
    }

    #[test]
    fn test_code_and_par_crate_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(parts: &[u64]) {\n        let mut out = Vec::new();\n        sjc_par::par_map(parts, |p| out.push(*p));\n    }\n}\n";
        assert!(analyze("crates/rdd/src/x.rs", src).is_empty());
        let src = "fn inner(parts: &[u64]) { let mut out = Vec::new(); par_map_budget(b, parts, |p| out.push(*p)); }\n";
        assert!(analyze("crates/par/src/lib.rs", src).is_empty());
    }
}
