//! Scoped-spawn pass.
//!
//! The persistent worker pool in `crates/par` exists because spawning a
//! fresh set of scoped threads per parallel call is exactly the overhead
//! that made every workload scale *negatively* with threads (see DESIGN.md
//! §16). This pass keeps that fix from eroding: outside `crates/par` —
//! the one place allowed to own OS threads — any direct
//! `std::thread::scope` or `std::thread::spawn` call is an error. Hot-path
//! code dispatches through the `sjc_par` entry points (`par_map`, `join`,
//! …), which amortize thread startup across the process and preserve the
//! deterministic chunk→result ordering the 1-vs-8-thread bit-identity
//! tests pin.
//!
//! Test code is exempt: a test may spawn a thread to exercise blocking or
//! cross-thread behavior without being a hot path. Matching is token-based
//! on the `thread :: scope` / `thread :: spawn` path shape (optionally
//! `std ::`-qualified), so `rayon::scope`-style identifiers in strings or
//! comments, a local method named `spawn`, and `tracing::span!` never
//! fire.

use crate::items::FileModel;
use crate::lexer::TokKind;
use crate::{Rule, Violation};

pub fn run(models: &[FileModel]) -> Vec<Violation> {
    let mut out = Vec::new();
    for m in models {
        // The pool's own workers are the sanctioned spawn site; harness
        // code (tests/, benches/) may spawn freely.
        if m.harness || m.krate == "par" {
            continue;
        }
        let toks = &m.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || !(t.text == "scope" || t.text == "spawn")
                || !toks.get(i + 1).is_some_and(|n| n.is_op("("))
            {
                continue;
            }
            // Require the `thread::` qualifier: a bare or differently
            // qualified `scope`/`spawn` is some other API. `std::thread::`
            // and an imported `thread` module both count; `my::thread::`
            // would too, which errs in the loud direction for a module
            // deliberately named like the std one.
            let threaded = i >= 2 && toks[i - 1].is_op("::") && toks[i - 2].is_ident("thread");
            if !threaded || m.in_test_at(i) {
                continue;
            }
            out.push(Violation::new(
                Rule::ScopedSpawnInHotPath,
                &m.rel_path,
                t.line,
                format!(
                    "direct `thread::{}(…)` outside crates/par — per-call thread spawning is \
                     the spawn-per-dispatch overhead the persistent pool removed; route the \
                     work through an sjc_par entry point (par_map/par_sort_by/join) so it \
                     reuses the pool's parked workers",
                    t.text
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(path: &str, src: &str) -> Vec<Violation> {
        run(&[FileModel::build(path, src)])
    }

    #[test]
    fn scope_and_spawn_fire_outside_par() {
        for bad in [
            "pub fn f(parts: &[u64]) {\n    std::thread::scope(|s| {\n        s.spawn(|| work(parts));\n    });\n}\n",
            "use std::thread;\npub fn f() {\n    let h = thread::spawn(|| 1u64);\n}\n",
        ] {
            let vs = analyze("crates/index/src/x.rs", bad);
            assert!(
                vs.iter().any(|v| v.rule == Rule::ScopedSpawnInHotPath),
                "{bad:?} -> {vs:?}"
            );
        }
    }

    #[test]
    fn the_pool_crate_and_test_code_are_exempt() {
        let src = "pub fn grow() {\n    std::thread::Builder::new().spawn(run_worker);\n    std::thread::scope(|s| s.spawn(f));\n}\n";
        assert!(analyze("crates/par/src/pool.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() {\n        std::thread::spawn(|| 1u64);\n    }\n}\n";
        assert!(analyze("crates/index/src/x.rs", test_src).is_empty());
        assert!(analyze("crates/index/tests/threads.rs", "fn t() { std::thread::spawn(f); }\n")
            .is_empty());
    }

    #[test]
    fn unrelated_scope_and_spawn_identifiers_do_not_fire() {
        for ok in [
            "pub fn f(p: &Path) -> PathBuf { p.join(\"x\") }\n",
            "pub fn f(s: &Scheduler) { s.spawn(task); }\n", // method, no thread::
            "pub fn f() { let scope = lexical_scope(); g(scope); }\n",
            "pub fn f() { pool::scope(run); }\n", // differently qualified
        ] {
            assert!(analyze("crates/cluster/src/x.rs", ok).is_empty(), "{ok:?}");
        }
    }

    #[test]
    fn suppression_is_honored_via_the_shared_filter() {
        // The pass emits raw findings; the shared allow filter in
        // analyze_files drops audited ones. Here we only check the finding
        // anchors at the call line so a line-level allow can cover it.
        let src = "pub fn f() {\n    std::thread::spawn(work);\n}\n";
        let vs = analyze("crates/rdd/src/x.rs", src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].line, 2, "{vs:?}");
    }
}
