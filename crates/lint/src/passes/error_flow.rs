//! Error-flow audit.
//!
//! Two halves:
//!
//! 1. **Variant liveness**: every variant of each audited vocabulary enum
//!    (`SimError`, the workspace's failure vocabulary, and `RecoveryKind`,
//!    the recovery-ledger vocabulary) must be *constructed* by non-test
//!    library code and *handled* (matched or rendered) somewhere. A variant
//!    nobody constructs is a hole in the failure model — the paper's "-"
//!    table cells claim specific failure modes, and a vocabulary entry that
//!    can never occur misrepresents what the simulation can express.
//! 2. **No silent discards**: library code must not throw a `Result` away
//!    with `let _ = …` or a trailing `.ok();`. The one systematic carve-out
//!    is `let _ = write!/writeln!(…)` — `fmt::Write` into an in-memory
//!    `String` is infallible, and the workspace renders every report that
//!    way. Anything else needs a reasoned suppression.

use crate::items::FileModel;
use crate::lexer::TokKind;
use crate::{Rule, Severity, Violation, PANIC_FREE_CRATES};

/// The audited vocabulary enums: (declaring file relative to the scanned
/// root, enum name). Every variant of each must be constructed by non-test
/// library code and handled (matched or rendered) somewhere.
const AUDITED_ENUMS: &[(&str, &str)] = &[
    ("crates/cluster/src/error.rs", "SimError"),
    ("crates/cluster/src/metrics.rs", "RecoveryKind"),
];

#[derive(Debug)]
struct Variant {
    name: String,
    line: usize,
    constructed: bool,
    constructed_in_test: bool,
    handled: bool,
}

pub fn run(models: &[FileModel]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (file, name) in AUDITED_ENUMS {
        out.extend(variant_liveness(models, file, name));
    }
    out.extend(discards(models));
    out
}

/// Parses the variant list out of `enum <name> { … }`.
fn parse_variants(m: &FileModel, enum_name: &str) -> Vec<Variant> {
    let toks = &m.toks;
    let mut variants = Vec::new();
    let Some(enum_at) = (0..toks.len()).find(|&i| {
        toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident(enum_name))
    }) else {
        return variants;
    };
    // Find the enum body's `{`.
    let mut k = enum_at + 2;
    while k < toks.len() && !toks[k].is_op("{") {
        k += 1;
    }
    k += 1;
    // At depth 1: `Name`, optional payload `{…}`/`(…)`, then `,` or `}`.
    while k < toks.len() && !toks[k].is_op("}") {
        if toks[k].kind == TokKind::Ident {
            let name = toks[k].text.clone();
            let line = toks[k].line;
            k += 1;
            if toks.get(k).is_some_and(|t| t.is_op("{") || t.is_op("(")) {
                k = skip_balanced(m, k);
            }
            variants.push(Variant {
                name,
                line,
                constructed: false,
                constructed_in_test: false,
                handled: false,
            });
        }
        if toks.get(k).is_some_and(|t| t.is_op(",")) {
            k += 1;
        } else if toks.get(k).is_some_and(|t| t.is_op("#")) {
            // Variant attribute — skip to its `]`.
            while k < toks.len() && !toks[k].is_op("]") {
                k += 1;
            }
            k += 1;
        } else if toks.get(k).is_some_and(|t| !t.is_op("}") && t.kind != TokKind::Ident) {
            k += 1;
        }
    }
    variants
}

/// Skips a balanced `{…}`/`(…)` starting at `open`; returns the index past
/// the close.
fn skip_balanced(m: &FileModel, open: usize) -> usize {
    let toks = &m.toks;
    let (o, c) = if toks[open].is_op("{") { ("{", "}") } else { ("(", ")") };
    let mut depth = 0i64;
    let mut k = open;
    while k < toks.len() {
        if toks[k].is_op(o) {
            depth += 1;
        } else if toks[k].is_op(c) {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    toks.len()
}

fn variant_liveness(models: &[FileModel], enum_file: &str, enum_name: &str) -> Vec<Violation> {
    let Some(enum_model) = models.iter().find(|m| m.rel_path == enum_file) else {
        return Vec::new(); // no such vocabulary in this tree
    };
    let mut variants = parse_variants(enum_model, enum_name);
    if variants.is_empty() {
        return Vec::new();
    }

    for m in models {
        // Pre-compute `matches!(…)` ranges: a variant mentioned inside one
        // is being handled, even though it is followed by `)`.
        let toks = &m.toks;
        let matches_ranges: Vec<(usize, usize)> = (0..toks.len())
            .filter(|&i| {
                toks[i].is_ident("matches")
                    && toks.get(i + 1).is_some_and(|t| t.is_op("!"))
                    && toks.get(i + 2).is_some_and(|t| t.is_op("("))
            })
            .map(|i| (i, skip_balanced(m, i + 2)))
            .collect();

        for i in 0..toks.len() {
            if !toks[i].is_ident(enum_name) || !toks.get(i + 1).is_some_and(|t| t.is_op("::")) {
                continue;
            }
            let Some(name_tok) = toks.get(i + 2) else { continue };
            let Some(variant) = variants.iter_mut().find(|v| v.name == name_tok.text) else {
                continue;
            };
            // Classify: skip the payload, then look at what follows.
            let mut after = i + 3;
            if toks.get(after).is_some_and(|t| t.is_op("{") || t.is_op("(")) {
                after = skip_balanced(m, after);
            }
            let in_matches = matches_ranges.iter().any(|&(s, e)| s <= i && i < e);
            let arm = toks.get(after).is_some_and(|t| t.is_op("=>") || t.is_op("|"))
                || toks.get(after).is_some_and(|t| t.is_ident("if")) && nearby_arrow(m, after)
                || in_matches
                || preceded_by_let(m, i);
            if arm {
                variant.handled = true;
            } else if m.in_test_at(i) {
                variant.constructed_in_test = true;
            } else {
                variant.constructed = true;
            }
        }
    }

    let mut out = Vec::new();
    for v in variants {
        if !v.handled {
            out.push(Violation::new(
                Rule::ErrorFlow,
                enum_file,
                v.line,
                format!(
                    "`{enum_name}::{}` is never matched or rendered — every failure mode \
                     must be handled somewhere (a match arm, kind(), or Display)",
                    v.name
                ),
            ));
        }
        if !v.constructed {
            let (sev, extra) = if v.constructed_in_test {
                (Severity::Warning, " (only test code constructs it)")
            } else {
                (Severity::Error, "")
            };
            out.push(
                Violation::new(
                    Rule::ErrorFlow,
                    enum_file,
                    v.line,
                    format!(
                        "dead variant: no library code constructs \
                         `{enum_name}::{}`{extra} — a failure mode that cannot occur \
                         misstates the failure model; construct it or delete it",
                        v.name
                    ),
                )
                .with_severity(sev),
            );
        }
    }
    out
}

/// True when a `matches!`-style `if` guard follows — `SimError::X { .. } if
/// cond => …` is still a match arm.
fn nearby_arrow(m: &FileModel, from: usize) -> bool {
    m.toks.iter().skip(from).take(24).any(|t| t.is_op("=>"))
}

/// True when the occurrence sits in an `if let` / `while let` / `let … else`
/// *pattern* a few tokens back — handling, not construction. A `let` with an
/// `=` between it and the occurrence puts us on the right-hand side
/// (`let x = SimError::V(…)`), which is construction.
fn preceded_by_let(m: &FileModel, i: usize) -> bool {
    let lo = i.saturating_sub(8);
    let Some(let_at) = (lo..i).rev().find(|&k| m.toks[k].is_ident("let")) else {
        return false;
    };
    !m.toks[let_at..i].iter().any(|t| t.is_op("="))
}

fn discards(models: &[FileModel]) -> Vec<Violation> {
    let mut out = Vec::new();
    for m in models {
        if m.harness || !PANIC_FREE_CRATES.contains(&m.krate.as_str()) {
            continue;
        }
        let toks = &m.toks;
        for i in 0..toks.len() {
            if m.in_test_at(i) {
                continue;
            }
            // `let _ = <rhs>;` — unless rhs is a write!/writeln! into an
            // in-memory formatter (infallible by construction here).
            if toks[i].is_ident("let")
                && toks.get(i + 1).is_some_and(|t| t.is_ident("_"))
                && toks.get(i + 2).is_some_and(|t| t.is_op("="))
            {
                let rhs_is_fmt_write =
                    toks.get(i + 3).is_some_and(|t| t.is_ident("write") || t.is_ident("writeln"))
                        && toks.get(i + 4).is_some_and(|t| t.is_op("!"));
                if !rhs_is_fmt_write {
                    out.push(Violation::new(
                        Rule::ErrorFlow,
                        &m.rel_path,
                        toks[i].line,
                        "`let _ = …` discards a value in library code — handle the Err arm, \
                         propagate with `?`, or suppress with the reason the result is \
                         genuinely irrelevant"
                            .to_string(),
                    ));
                }
            }
            // Trailing `.ok();` — Result thrown away.
            if toks[i].is_op(".")
                && toks.get(i + 1).is_some_and(|t| t.is_ident("ok"))
                && toks.get(i + 2).is_some_and(|t| t.is_op("("))
                && toks.get(i + 3).is_some_and(|t| t.is_op(")"))
                && toks.get(i + 4).is_some_and(|t| t.is_op(";"))
            {
                out.push(Violation::new(
                    Rule::ErrorFlow,
                    &m.rel_path,
                    toks[i].line,
                    "trailing `.ok();` silently discards a Result in library code — handle \
                     the Err arm or suppress with the reason best-effort is correct here"
                        .to_string(),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(files: &[(&str, &str)]) -> Vec<Violation> {
        let models: Vec<FileModel> = files.iter().map(|(p, s)| FileModel::build(p, s)).collect();
        run(&models)
    }

    const ENUM_SRC: &str = "pub enum SimError {\n    Alive(String),\n    Dead { code: u64 },\n}\nimpl SimError {\n    pub fn kind(&self) -> &'static str {\n        match self {\n            SimError::Alive(_) => \"alive\",\n            SimError::Dead { .. } => \"dead\",\n        }\n    }\n}\n";

    #[test]
    fn dead_variant_is_flagged_at_its_declaration() {
        let vs = analyze(&[
            ("crates/cluster/src/error.rs", ENUM_SRC),
            (
                "crates/cluster/src/lib.rs",
                "pub fn f() -> Result<(), SimError> { Err(SimError::Alive(\"x\".into())) }\n",
            ),
        ]);
        let dead: Vec<_> = vs.iter().filter(|v| v.message.contains("dead variant")).collect();
        assert_eq!(dead.len(), 1, "{vs:?}");
        assert!(dead[0].message.contains("Dead"));
        assert_eq!(dead[0].path, "crates/cluster/src/error.rs");
        assert_eq!(dead[0].severity, Severity::Error);
    }

    #[test]
    fn test_only_construction_is_a_warning() {
        let vs = analyze(&[
            ("crates/cluster/src/error.rs", ENUM_SRC),
            (
                "crates/cluster/src/lib.rs",
                "pub fn f() -> Result<(), SimError> { Err(SimError::Alive(\"x\".into())) }\n#[cfg(test)]\nmod tests {\n    fn t() { let _d = SimError::Dead { code: 1 }; }\n}\n",
            ),
        ]);
        let dead: Vec<_> = vs.iter().filter(|v| v.message.contains("dead variant")).collect();
        assert_eq!(dead.len(), 1, "{vs:?}");
        assert_eq!(dead[0].severity, Severity::Warning);
    }

    #[test]
    fn matches_and_if_let_count_as_handling_not_construction() {
        let vs = analyze(&[
            ("crates/cluster/src/error.rs", ENUM_SRC),
            (
                "crates/cluster/src/lib.rs",
                "pub fn f(e: &SimError) -> bool {\n    if let SimError::Dead { .. } = e { return true; }\n    matches!(e, SimError::Alive(_))\n}\npub fn g() -> SimError { SimError::Alive(\"x\".into()) }\npub fn h() -> SimError { SimError::Dead { code: 2 } }\n",
            ),
        ]);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn unhandled_variant_is_flagged() {
        let vs = analyze(&[
            ("crates/cluster/src/error.rs", "pub enum SimError {\n    Orphan(u64),\n}\n"),
            ("crates/cluster/src/lib.rs", "pub fn f() -> SimError { SimError::Orphan(1) }\n"),
        ]);
        assert!(vs.iter().any(|v| v.message.contains("never matched or rendered")), "{vs:?}");
    }

    #[test]
    fn recovery_kind_vocabulary_is_audited_too() {
        let metrics_src = "pub enum RecoveryKind {\n    Retry { attempt: u32 },\n    Ghost { node: u32 },\n}\npub fn retry(attempt: u32) -> RecoveryKind {\n    RecoveryKind::Retry { attempt }\n}\npub fn label(k: &RecoveryKind) -> &'static str {\n    match k {\n        RecoveryKind::Retry { .. } => \"retry\",\n        RecoveryKind::Ghost { .. } => \"ghost\",\n    }\n}\n";
        let vs = analyze(&[("crates/cluster/src/metrics.rs", metrics_src)]);
        let dead: Vec<_> = vs.iter().filter(|v| v.message.contains("dead variant")).collect();
        assert_eq!(dead.len(), 1, "{vs:?}");
        assert!(dead[0].message.contains("RecoveryKind::Ghost"), "{vs:?}");
        assert_eq!(dead[0].path, "crates/cluster/src/metrics.rs");
    }

    #[test]
    fn discards_fire_with_fmt_write_exempt() {
        let src = "use std::fmt::Write as _;\npub fn render(xs: &[u64]) -> String {\n    let mut out = String::new();\n    let _ = writeln!(out, \"\");\n    let _ = fallible();\n    cleanup().ok();\n    out\n}\n";
        let vs = analyze(&[("crates/core/src/report2.rs", src)]);
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs.iter().any(|v| v.line == 5 && v.message.contains("let _")), "{vs:?}");
        assert!(vs.iter().any(|v| v.line == 6 && v.message.contains(".ok()")), "{vs:?}");
    }

    #[test]
    fn discards_in_tests_and_non_library_crates_are_fine() {
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = fallible(); cleanup().ok(); }\n}\n";
        assert!(analyze(&[("crates/data/src/x.rs", test_src)]).is_empty());
        let bench_src = "pub fn b() { let _ = fallible(); }\n";
        assert!(analyze(&[("crates/bench/src/x.rs", bench_src)]).is_empty());
    }

    #[test]
    fn ok_in_expression_position_is_not_a_discard() {
        let src = "pub fn f(x: R) -> Option<u64> { x.parse().ok().map(|v| v + 1) }\n";
        assert!(analyze(&[("crates/data/src/x.rs", src)]).is_empty());
    }
}
