//! Hot-path reachability: which functions run inside the measured region.
//!
//! The hot set is seeded from the two places host wall-clock is actually
//! spent (see DESIGN.md §12):
//!
//! 1. **`sjc_par` entry-point closures** — the callees a worker-thread
//!    closure dispatches to. The closure argument of every
//!    `par_map`/`join`/… call is scanned for call sites, and the matching
//!    call-graph edges of the enclosing function become roots. Rooting the
//!    *callees named inside the closure* rather than the whole enclosing
//!    function keeps driver-side setup code out of the hot set.
//! 2. **`crates/bench` functions** — everything the bench harness calls is
//!    by definition inside a measured region (bench bodies themselves are
//!    never *flagged*; they only seed traversal into the library crates).
//!    The crate's `src/bin/` CLI drivers are excluded: `reproduce` and
//!    `perfsnap` print tables and write JSON *after* the simulated runs —
//!    nothing they call sits inside a timed region.
//! 3. **Scratch-arena callers** — a function that checks buffers out of
//!    `sjc_par::scratch` (`take_vec`/`put_vec`/`with_vec`) is reusing
//!    allocations precisely because it sits on a hot path, so it seeds the
//!    set like a par-closure callee. The same exclusions as root 2 apply —
//!    bench CLI drivers, plus anything under a `target/` directory (build
//!    artifacts are not workspace code, and walking them would blow the
//!    lint gate's 20 s budget) — and `crates/par` itself is exempt: the
//!    arena's internals are not users of it.
//!
//! From those roots the set closes forward over the crate-topology-gated
//! call graph, the same edges the entropy pass trusts. The closure bodies
//! handed to `sjc_par` are additionally reported as hot token *ranges* per
//! file, so loops written inline in a worker closure are covered without
//! any call-graph hop.

use std::collections::BTreeMap;

use crate::callgraph::{calls_in, CallGraph, FnId};
use crate::cfg;
use crate::items::FileModel;
use crate::passes::par_closure;

/// The hot-path reachability result for one workspace scan.
pub(crate) struct HotSet {
    /// Parallel to `graph.fns`: true when the function is reachable from a
    /// hot root.
    pub hot: Vec<bool>,
    /// Per model index: token ranges of closure bodies handed directly to
    /// `sjc_par` entry points (hot even when their enclosing fn is not).
    pub closure_ranges: Vec<Vec<(usize, usize)>>,
}

pub(crate) fn compute(models: &[FileModel], graph: &CallGraph) -> HotSet {
    let mut hot = vec![false; graph.fns.len()];
    let mut work: Vec<FnId> = Vec::new();
    let mut closure_ranges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); models.len()];

    // Root 2: bench functions (including bench harness files — the bench
    // crate *is* the measured-region driver), except the `src/bin/` CLI
    // drivers, which only format and print already-computed results.
    let mut id_of: BTreeMap<(usize, usize), FnId> = BTreeMap::new();
    for (id, &(fi, gi)) in graph.fns.iter().enumerate() {
        id_of.insert((fi, gi), id);
        let m = &models[fi];
        if m.krate == "bench" && !m.rel_path.contains("/src/bin/") && !hot[id] {
            hot[id] = true;
            work.push(id);
        }
    }

    // Root 1: callees named inside sjc_par entry-point closures.
    for (mi, m) in models.iter().enumerate() {
        if m.krate == "par" {
            continue; // the runtime's internals dispatch their own closures
        }
        let toks = &m.toks;
        let mut i = 0usize;
        while i < toks.len() {
            if !par_closure::is_par_call(m, i) || m.in_test_at(i) {
                i += 1;
                continue;
            }
            let open = i + 1;
            let Some(close) = cfg::matching(toks, open, "(", ")") else { break };
            let mut j = open + 1;
            while j < close {
                if toks[j].is_op("|") || toks[j].is_op("||") {
                    let (bs, be, _) = par_closure::closure_extent(toks, j, close);
                    closure_ranges[mi].push((bs, be));
                    // Every call-graph edge of the enclosing fn whose
                    // call-site name appears in the closure body is a root.
                    let names: Vec<String> =
                        calls_in(toks, bs, be).into_iter().map(|c| c.name).collect();
                    let caller = m
                        .fns
                        .iter()
                        .rposition(|f| f.body.is_some_and(|(s, e)| s <= i && i <= e))
                        .and_then(|gi| id_of.get(&(mi, gi)).copied());
                    if let Some(caller) = caller {
                        for e in &graph.edges[caller] {
                            if names.contains(&e.via) && !hot[e.callee] {
                                hot[e.callee] = true;
                                work.push(e.callee);
                            }
                        }
                    }
                    j = be + 1;
                } else {
                    j += 1;
                }
            }
            i = close + 1;
        }
    }

    // Root 3: functions whose bodies check buffers out of the sjc_par
    // scratch arena. Same exclusions as root 2 (bench CLI drivers, target/
    // artifacts); the arena's own crate is exempt.
    for (id, &(fi, gi)) in graph.fns.iter().enumerate() {
        let m = &models[fi];
        if hot[id]
            || m.krate == "par"
            || m.rel_path.contains("/src/bin/")
            || m.rel_path.contains("target/")
        {
            continue;
        }
        let Some((bs, be)) = m.fns[gi].body else { continue };
        let toks = &m.toks;
        let uses_scratch = (bs..=be.min(toks.len().saturating_sub(1))).any(|k| {
            k >= 2
                && toks[k].kind == crate::lexer::TokKind::Ident
                && matches!(toks[k].text.as_str(), "take_vec" | "put_vec" | "with_vec")
                && toks[k - 1].is_op("::")
                && toks[k - 2].is_ident("scratch")
                && !m.in_test_at(k)
        });
        if uses_scratch {
            hot[id] = true;
            work.push(id);
        }
    }

    // Forward closure: anything a hot function calls is hot.
    while let Some(id) = work.pop() {
        for e in &graph.edges[id] {
            if !hot[e.callee] {
                hot[e.callee] = true;
                work.push(e.callee);
            }
        }
    }

    HotSet { hot, closure_ranges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;

    fn hot_names(files: &[(&str, &str)]) -> Vec<String> {
        let models: Vec<FileModel> = files.iter().map(|(p, s)| FileModel::build(p, s)).collect();
        let graph = callgraph::build(&models);
        let set = compute(&models, &graph);
        graph
            .fns
            .iter()
            .enumerate()
            .filter(|&(id, _)| set.hot[id])
            .map(|(_, &(fi, gi))| models[fi].fns[gi].name.clone())
            .collect()
    }

    #[test]
    fn par_closure_callees_and_their_callees_are_hot() {
        let names = hot_names(&[(
            "crates/index/src/x.rs",
            "pub fn drive(parts: &[Vec<u64>]) -> Vec<u64> {\n    sjc_par::par_map(parts, |p| kernel(p))\n}\nfn kernel(p: &[u64]) -> u64 { helper(p) }\nfn helper(p: &[u64]) -> u64 { p.len() as u64 }\nfn cold(p: &[u64]) -> u64 { p.len() as u64 }\n",
        )]);
        assert!(names.contains(&"kernel".to_string()), "{names:?}");
        assert!(names.contains(&"helper".to_string()), "{names:?}");
        assert!(!names.contains(&"cold".to_string()), "{names:?}");
        // The driver itself is not hot — only what the closure dispatches.
        assert!(!names.contains(&"drive".to_string()), "{names:?}");
    }

    #[test]
    fn scratch_arena_callers_seed_the_hot_set_with_the_driver_exclusions() {
        // A library function checking buffers out of the arena is hot, and
        // so is everything it calls…
        let src = "pub fn build(n: usize) -> Vec<u64> {\n    let mut buf: Vec<u64> = sjc_par::scratch::take_vec();\n    fill(&mut buf, n);\n    let out = buf.clone();\n    sjc_par::scratch::put_vec(buf);\n    out\n}\nfn fill(buf: &mut Vec<u64>, n: usize) { buf.extend(0..n as u64); }\nfn cold() -> u64 { 3 }\n";
        let names = hot_names(&[("crates/index/src/stripes.rs", src)]);
        assert!(names.contains(&"build".to_string()), "{names:?}");
        assert!(names.contains(&"fill".to_string()), "{names:?}");
        assert!(!names.contains(&"cold".to_string()), "{names:?}");
        // …but the same code in a bench CLI driver or a target/ artifact
        // seeds nothing, and the arena's own crate is exempt.
        for excluded in [
            "crates/bench/src/bin/perfsnap.rs",
            "target/debug/build/x.rs",
            "crates/par/src/scratch.rs",
        ] {
            let names = hot_names(&[(excluded, src)]);
            assert!(!names.contains(&"fill".to_string()), "{excluded}: {names:?}");
        }
    }

    #[test]
    fn bench_fns_seed_reachability_across_crates() {
        let names = hot_names(&[
            (
                "crates/bench/src/suite.rs",
                "use sjc_core::run_join;\npub fn measure() -> u64 { run_join() }\n",
            ),
            ("crates/core/src/join.rs", "pub fn run_join() -> u64 { inner() }\nfn inner() -> u64 { 1 }\nfn unused() -> u64 { 2 }\n"),
        ]);
        assert!(names.contains(&"run_join".to_string()), "{names:?}");
        assert!(names.contains(&"inner".to_string()), "{names:?}");
        assert!(!names.contains(&"unused".to_string()), "{names:?}");
    }
}
