//! Hot-alloc pass: no per-iteration allocation inside hot-path loops.
//!
//! Tsitsigkos et al. and LocationSpark both measure that allocation and
//! per-tuple overhead inside partition-join inner loops dominate in-memory
//! spatial join cost. This pass makes that a checked invariant: inside any
//! **loop** of a hot function (see [`super::hot`] for how the hot set is
//! seeded and closed), the allocating calls below are errors.
//!
//! What fires: `.clone()`, `.to_string()`, `.to_owned()`, `.to_vec()`,
//! `.collect(…)`, `.repeat(…)`, `format!`, `vec!`, `Box::new`,
//! `String::from`.
//!
//! What is exempt, by construction rather than by special case:
//!
//! * `Vec::with_capacity` / `String::with_capacity` — the sanctioned
//!   pre-sizing idiom is not on the alloc list (a pre-sized allocation
//!   hoisted *outside* the loop is the fix this pass asks for);
//! * buffer reuse — `buf.clear()` + `buf.extend(…)`/`push` do not allocate
//!   once capacity is warm, and none of them are on the list;
//! * straight-line closure bodies — only *loop* regions fire, so a
//!   per-partition closure that allocates its one result buffer per task is
//!   fine; the same allocation inside its per-record loop is not.
//!
//! Scope: non-test code of the simulation crates (`SIM_CRATES`) — the code
//! that produces the paper's numbers. Findings are errors; a deliberate
//! per-iteration allocation states its reason in a suppression.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::cfg::FnCfg;
use crate::items::FileModel;
use crate::lexer::TokKind;
use crate::passes::hot::HotSet;
use crate::{Rule, Violation, SIM_CRATES};

/// Methods that allocate on every call.
const ALLOC_METHODS: &[&str] = &["clone", "to_string", "to_owned", "to_vec", "collect", "repeat"];

/// Macros that allocate on every expansion.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// `Type::fn` pairs that allocate.
const ALLOC_QUALIFIED: &[(&str, &str)] = &[("Box", "new"), ("String", "from"), ("Vec", "from")];

pub(crate) fn run(models: &[FileModel], graph: &CallGraph, hot: &HotSet) -> Vec<Violation> {
    let mut out = Vec::new();
    for (mi, m) in models.iter().enumerate() {
        if m.harness || !SIM_CRATES.contains(&m.krate.as_str()) {
            continue;
        }
        // Hot loop spans of this file: loops of hot functions plus loops
        // written inline in par-closure bodies. Deduped by opening brace —
        // a closure inside a hot fn contributes its loops only once.
        let mut spans: Vec<(usize, usize, usize)> = Vec::new(); // (open, close, line)
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        for (id, &(fi, gi)) in graph.fns.iter().enumerate() {
            if fi != mi || !hot.hot[id] {
                continue;
            }
            let f = &m.fns[gi];
            if f.in_test {
                continue;
            }
            let Some((s, e)) = f.body else { continue };
            for r in FnCfg::build(&m.toks, s, e).loops() {
                if seen.insert(r.open) {
                    spans.push((r.open, r.close, r.line));
                }
            }
        }
        for &(cs, ce) in &hot.closure_ranges[mi] {
            if m.in_test_at(cs) {
                continue;
            }
            for r in FnCfg::build(&m.toks, cs, ce).loops() {
                if seen.insert(r.open) {
                    spans.push((r.open, r.close, r.line));
                }
            }
        }
        if spans.is_empty() {
            continue;
        }

        for k in 0..m.toks.len() {
            let Some(&(_, _, loop_line)) =
                spans.iter().filter(|&&(s, e, _)| s < k && k < e).max_by_key(|&&(s, _, _)| s)
            else {
                continue;
            };
            let Some(what) = alloc_site(m, k) else { continue };
            let fn_name = m
                .fns
                .iter()
                .rfind(|f| f.body.is_some_and(|(s, e)| s <= k && k <= e))
                .map(|f| f.name.clone())
                .unwrap_or_default();
            out.push(Violation::new(
                Rule::HotAlloc,
                &m.rel_path,
                m.toks[k].line,
                format!(
                    "`{what}` allocates on every iteration of the hot loop at line {loop_line} \
                     (fn `{fn_name}` runs inside the measured region) — hoist it above the loop, \
                     pre-size with with_capacity, or reuse a cleared buffer"
                ),
            ));
        }
    }
    out
}

/// If token `k` heads an allocating call, returns its display form.
fn alloc_site(m: &FileModel, k: usize) -> Option<String> {
    let toks = &m.toks;
    let t = &toks[k];
    if t.kind != TokKind::Ident {
        return None;
    }
    let next = toks.get(k + 1)?;
    // `.clone()` / `.collect::<…>(…)` — a method call on some receiver.
    if k > 0
        && toks[k - 1].is_op(".")
        && ALLOC_METHODS.contains(&t.text.as_str())
        && (next.is_op("(") || next.is_op("::"))
    {
        return Some(format!(".{}()", t.text));
    }
    // `format!(…)` / `vec![…]`.
    if ALLOC_MACROS.contains(&t.text.as_str()) && next.is_op("!") {
        return Some(format!("{}!", t.text));
    }
    // `Box::new(…)` / `String::from(…)`.
    for &(ty, f) in ALLOC_QUALIFIED {
        if t.is_ident(ty)
            && next.is_op("::")
            && toks.get(k + 2).is_some_and(|n| n.is_ident(f))
            && toks.get(k + 3).is_some_and(|n| n.is_op("("))
        {
            return Some(format!("{ty}::{f}"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::passes::hot;

    fn analyze(files: &[(&str, &str)]) -> Vec<Violation> {
        let models: Vec<FileModel> = files.iter().map(|(p, s)| FileModel::build(p, s)).collect();
        let graph = callgraph::build(&models);
        let set = hot::compute(&models, &graph);
        run(&models, &graph, &set)
    }

    const DRIVER: &str =
        "pub fn drive(parts: &[Vec<u64>]) -> Vec<u64> {\n    sjc_par::par_map(parts, |p| kernel(p))\n}\n";

    #[test]
    fn alloc_in_hot_loop_fires() {
        let src = format!(
            "{DRIVER}fn kernel(p: &[u64]) -> u64 {{\n    let mut acc = 0u64;\n    for x in p.iter() {{\n        let s = x.to_string();\n        acc += s.len() as u64;\n    }}\n    acc\n}}\n"
        );
        let vs = analyze(&[("crates/index/src/x.rs", &src)]);
        assert!(
            vs.iter().any(|v| v.rule == Rule::HotAlloc && v.message.contains(".to_string()")),
            "{vs:?}"
        );
    }

    #[test]
    fn presized_and_reused_buffers_are_clean() {
        let src = format!(
            "{DRIVER}fn kernel(p: &[u64]) -> u64 {{\n    let mut buf = Vec::with_capacity(p.len());\n    for x in p.iter() {{\n        buf.clear();\n        buf.push(*x);\n    }}\n    buf.len() as u64\n}}\n"
        );
        assert!(analyze(&[("crates/index/src/x.rs", &src)]).is_empty());
    }

    #[test]
    fn alloc_outside_hot_loops_or_hot_set_is_clean() {
        // Allocation in a straight-line hot fn body (one buffer per task)…
        let src = format!(
            "{DRIVER}fn kernel(p: &[u64]) -> u64 {{\n    let v = p.to_vec();\n    v.len() as u64\n}}\n"
        );
        assert!(analyze(&[("crates/index/src/x.rs", &src)]).is_empty());
        // …and a loop alloc in an unreachable fn are both out of scope.
        let src = format!(
            "{DRIVER}fn kernel(p: &[u64]) -> u64 {{ p.len() as u64 }}\nfn cold(p: &[u64]) -> Vec<String> {{\n    let mut v = Vec::new();\n    for x in p.iter() {{\n        v.push(x.to_string());\n    }}\n    v\n}}\n"
        );
        assert!(analyze(&[("crates/index/src/x.rs", &src)]).is_empty());
    }

    #[test]
    fn loops_written_inline_in_par_closures_fire() {
        let src = "pub fn drive(parts: &[Vec<u64>]) -> Vec<u64> {\n    sjc_par::par_map(parts, |p| {\n        let mut acc = 0u64;\n        for x in p.iter() {\n            acc += format!(\"{x}\").len() as u64;\n        }\n        acc\n    })\n}\n";
        let vs = analyze(&[("crates/core/src/x.rs", src)]);
        assert!(vs.iter().any(|v| v.message.contains("format!")), "{vs:?}");
    }

    #[test]
    fn bench_reached_fns_fire_but_bench_itself_does_not() {
        let bench = "use sjc_core::run_join;\npub fn measure() -> u64 {\n    let mut acc = 0;\n    for _ in 0..3 {\n        acc += run_join() + format!(\"x\").len() as u64;\n    }\n    acc\n}\n";
        let core = "pub fn run_join() -> u64 {\n    let mut acc = 0u64;\n    for i in 0..4u64 {\n        acc += i.to_string().len() as u64;\n    }\n    acc\n}\n";
        let vs =
            analyze(&[("crates/bench/src/suite.rs", bench), ("crates/core/src/join.rs", core)]);
        assert!(vs.iter().all(|v| v.path == "crates/core/src/join.rs"), "{vs:?}");
        assert!(vs.iter().any(|v| v.message.contains(".to_string()")), "{vs:?}");
    }
}
