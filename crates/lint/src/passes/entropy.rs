//! Entropy-taint pass.
//!
//! Two halves:
//!
//! 1. **Reachability**: a function whose body mentions a wall-clock or
//!    entropy API is a *source*; taint propagates backwards along the call
//!    graph (callers of tainted functions are tainted). Any tainted
//!    function in a simulation crate's non-test code is a violation — the
//!    line rule only sees direct call sites, this closes the transitive
//!    gap (`schedule() → helper() → thread_rng()` across files).
//! 2. **Flow into simulated output**: inside any single function (bench
//!    included — bench may *observe* the clock, but simulated numbers must
//!    never be derived from it), a value bound from an entropy source must
//!    not reach a `sim_ns` field/variable assignment or a `*trace*(…)`
//!    call argument. Taint is tracked per binding through `let` chains.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::items::FileModel;
use crate::lexer::{Tok, TokKind};
use crate::{Rule, Violation, SIM_CRATES};

/// Entropy/wall-clock source patterns, as (qualifier, name) or bare names.
const QUALIFIED_SOURCES: &[(&str, &str)] = &[("Instant", "now"), ("SystemTime", "now")];
const BARE_SOURCES: &[&str] = &["thread_rng", "from_entropy"];

/// Scans a token range for a direct entropy-source mention; returns a label
/// and the 1-based line of the first one found. Shared with the purity half
/// of the summary layer, which treats any clock/entropy read as impure.
pub(crate) fn direct_source(toks: &[Tok], start: usize, end: usize) -> Option<(String, usize)> {
    let hi = end.min(toks.len().saturating_sub(1));
    for i in start..=hi {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        for &(q, n) in QUALIFIED_SOURCES {
            if toks[i].is_ident(q)
                && toks.get(i + 1).is_some_and(|t| t.is_op("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident(n))
            {
                return Some((format!("{q}::{n}"), toks[i].line));
            }
        }
        if BARE_SOURCES.contains(&toks[i].text.as_str()) {
            return Some((toks[i].text.clone(), toks[i].line));
        }
    }
    None
}

pub fn run(models: &[FileModel], graph: &CallGraph) -> Vec<Violation> {
    // taint[id] = Some((via, source_label)): `via` is the callee name this
    // function reached the source through ("" for direct sources).
    let mut taint: Vec<Option<(String, String)>> = vec![None; graph.fns.len()];
    let mut work = Vec::new();
    for (id, &(fi, gi)) in graph.fns.iter().enumerate() {
        let f = &models[fi].fns[gi];
        if let Some((s, e)) = f.body {
            if let Some((label, _)) = direct_source(&models[fi].toks, s, e) {
                taint[id] = Some((String::new(), label));
                work.push(id);
            }
        }
    }
    // Propagate backwards: build reverse edges once, then fixpoint.
    let mut callers: Vec<Vec<(usize, String)>> = vec![Vec::new(); graph.fns.len()];
    for (caller, edges) in graph.edges.iter().enumerate() {
        for e in edges {
            callers[e.callee].push((caller, e.via.clone()));
        }
    }
    while let Some(id) = work.pop() {
        let source = taint[id].as_ref().map(|(_, s)| s.clone()).unwrap_or_default();
        for (caller, via) in callers[id].clone() {
            if taint[caller].is_none() {
                taint[caller] = Some((via, source.clone()));
                work.push(caller);
            }
        }
    }

    let mut out = Vec::new();
    for (id, &(fi, gi)) in graph.fns.iter().enumerate() {
        let m = &models[fi];
        let f = &m.fns[gi];
        let Some((via, source)) = &taint[id] else { continue };
        if !SIM_CRATES.contains(&m.krate.as_str()) || f.in_test || m.harness {
            continue;
        }
        let how = if via.is_empty() {
            format!("calls `{source}` directly")
        } else {
            format!("reaches `{source}` via `{via}(…)`")
        };
        out.push(Violation::new(
            Rule::EntropyTaint,
            &m.rel_path,
            f.line,
            format!(
                "fn `{}` {how} — simulation code must derive everything from the experiment seed; \
                 hoist the host observation into crates/bench or thread a seeded rng through",
                f.name
            ),
        ));
    }

    // Per-function data-flow: entropy-derived bindings must not reach
    // sim_ns / trace output.
    for m in models {
        for f in &m.fns {
            if f.in_test || m.harness {
                continue;
            }
            let Some((s, e)) = f.body else { continue };
            out.extend(flow_violations(m, s, e));
        }
    }
    out
}

/// Sink names: an identifier containing `sim_ns`, or a called function whose
/// name mentions the trace machinery.
fn is_sink_ident(name: &str) -> bool {
    name.contains("sim_ns")
}

fn is_sink_call(name: &str) -> bool {
    name.contains("sim_ns") || name.contains("trace")
}

/// Intra-function taint: statements are approximated line-by-line (the
/// workspace is rustfmt-formatted, so a binding and its initializer share a
/// line often enough for a checker that only has to catch real leaks, not
/// prove their absence).
fn flow_violations(m: &FileModel, start: usize, end: usize) -> Vec<Violation> {
    let toks = &m.toks;
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    // Statement grouping shared with the unit-flow pass (`crate::dataflow`).
    let lines = crate::dataflow::group_lines(toks, start, end);
    let mut out = Vec::new();
    for (&line, idxs) in &lines {
        let line_toks: Vec<&Tok> = idxs.iter().map(|&i| &toks[i]).collect();
        let has_source = direct_source_flat(&line_toks);
        let rhs_tainted =
            line_toks.iter().any(|t| t.kind == TokKind::Ident && tainted.contains(&t.text));
        // `let [mut] name … = …` with an entropic RHS taints the binding.
        if has_source || rhs_tainted {
            let mut k = 0;
            while k < line_toks.len() {
                if line_toks[k].is_ident("let") {
                    let mut j = k + 1;
                    while j < line_toks.len()
                        && !line_toks[j].is_op("=")
                        && !line_toks[j].is_op(";")
                    {
                        if line_toks[j].kind == TokKind::Ident && line_toks[j].text != "mut" {
                            tainted.insert(line_toks[j].text.clone());
                        }
                        j += 1;
                    }
                    k = j;
                } else {
                    k += 1;
                }
            }
        }
        if tainted.is_empty() {
            continue;
        }
        // Sinks: `sim_ns: <expr>` / `sim_ns = <expr>` with a tainted ident
        // in the expression, or `…trace…( … tainted … )`.
        for (k, t) in line_toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let next = line_toks.get(k + 1);
            let sink_assign =
                is_sink_ident(&t.text) && next.is_some_and(|n| n.is_op(":") || n.is_op("="));
            let sink_call = is_sink_call(&t.text)
                && next.is_some_and(|n| n.is_op("("))
                // Reading a field like `t.sim_ns` is fine; calling
                // `record_trace(x)` with tainted x is not.
                && !t.text.is_empty();
            if !(sink_assign || sink_call) {
                continue;
            }
            // The value expression: tokens after the `:`/`=`/`(` up to a
            // `,`/`;` at the same nesting depth (or end of line).
            let mut depth = 0i64;
            for v in line_toks.iter().skip(k + 2) {
                if v.is_op("(") || v.is_op("[") || v.is_op("{") {
                    depth += 1;
                } else if v.is_op(")") || v.is_op("]") || v.is_op("}") {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if depth == 0 && (v.is_op(",") || v.is_op(";")) {
                    break;
                } else if v.kind == TokKind::Ident && tainted.contains(&v.text) {
                    out.push(Violation::new(
                        Rule::EntropyTaint,
                        &m.rel_path,
                        line,
                        format!(
                            "`{}` is derived from a wall-clock/entropy source and flows into \
                             `{}` — simulated output must be a pure function of the seed",
                            v.text, t.text
                        ),
                    ));
                    break;
                }
            }
        }
    }
    out
}

/// [`direct_source`] over an already-selected token slice.
fn direct_source_flat(toks: &[&Tok]) -> bool {
    for i in 0..toks.len() {
        for &(q, n) in QUALIFIED_SOURCES {
            if toks[i].is_ident(q)
                && toks.get(i + 1).is_some_and(|t| t.is_op("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident(n))
            {
                return true;
            }
        }
        if toks[i].kind == TokKind::Ident && BARE_SOURCES.contains(&toks[i].text.as_str()) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;

    fn analyze(files: &[(&str, &str)]) -> Vec<Violation> {
        let models: Vec<FileModel> = files.iter().map(|(p, s)| FileModel::build(p, s)).collect();
        let graph = callgraph::build(&models);
        run(&models, &graph)
    }

    #[test]
    fn transitive_reach_across_files_is_flagged() {
        let vs = analyze(&[
            (
                "crates/cluster/src/sched.rs",
                "use sjc_data::jitter;\npub fn plan() -> u64 { jitter() }\n",
            ),
            ("crates/data/src/noise.rs", "pub fn jitter() -> u64 { thread_rng() }\n"),
        ]);
        assert!(
            vs.iter().any(|v| v.rule == Rule::EntropyTaint
                && v.path == "crates/cluster/src/sched.rs"
                && v.message.contains("jitter")),
            "{vs:?}"
        );
        // The source itself sits in `data`, which is not a sim crate: the
        // line rules (bench-isolation) own that site.
        assert!(!vs.iter().any(|v| v.path == "crates/data/src/noise.rs"), "{vs:?}");
    }

    #[test]
    fn unrelated_crates_do_not_propagate() {
        // bench's `jitter` must not taint cluster's `plan`: cluster does
        // not import sjc_bench.
        let vs = analyze(&[
            ("crates/cluster/src/sched.rs", "pub fn plan() -> u64 { jitter() }\n"),
            ("crates/bench/src/noise.rs", "pub fn jitter() -> u64 { thread_rng() }\n"),
        ]);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn clock_derived_value_into_sim_ns_is_flagged_even_in_bench() {
        let vs = analyze(&[(
            "crates/bench/src/snap.rs",
            "pub fn snap(r: &mut Row) {\n    let t0 = Instant::now();\n    let wall = t0;\n    r.sim_ns = wall;\n}\n",
        )]);
        assert!(vs.iter().any(|v| v.rule == Rule::EntropyTaint && v.line == 4), "{vs:?}");
    }

    #[test]
    fn wall_clock_next_to_sim_ns_without_flow_is_clean() {
        // Reading the clock into wall_ms while sim_ns comes from the model
        // is exactly what perfsnap does — must not fire.
        let vs = analyze(&[(
            "crates/bench/src/snap.rs",
            "pub fn snap(r: &mut Row, model_ns: u64) {\n    let t0 = Instant::now();\n    r.wall_ms = elapsed(t0);\n    r.sim_ns = model_ns;\n}\n",
        )]);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn test_code_is_out_of_scope() {
        let vs = analyze(&[(
            "crates/cluster/src/sched.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { let x = thread_rng(); }\n}\n",
        )]);
        assert!(vs.is_empty(), "{vs:?}");
    }
}
