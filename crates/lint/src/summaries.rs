//! Bottom-up interprocedural function summaries.
//!
//! The per-function passes stop at call boundaries; this module closes them.
//! It condenses the crate-topology-gated call graph into strongly connected
//! components (iterative Tarjan — the pop order of Tarjan is already reverse
//! topological, i.e. callees before callers) and computes, bottom-up, one
//! [`Summary`] fact set per function:
//!
//! * **may-panic** — the body contains `.unwrap()`/`.expect(`, a panicking
//!   macro, slice indexing, or a literal-zero divisor, or the function calls
//!   one that does. A site whose line carries an audited
//!   `allow(no-panic-in-lib)`/`allow(panic-path)` comment is trusted and
//!   does not count; the consumed audit is recorded so `stale-suppression`
//!   knows it is live.
//! * **purity** — the body reads no clock/entropy API and mutates no
//!   `static` (ALL_CAPS receiver hit with a mutating method or assigned
//!   to), transitively.
//! * **unit signature** — the `_ns`/`_bytes`/`_count` unit of each named
//!   parameter and of the returned value, from names and `let`-chain
//!   dataflow ([`crate::dataflow`]), with tail calls resolved through the
//!   summaries themselves (a fixpoint inside cyclic components).
//!
//! Both boolean properties are monotone (a fact only ever turns on), so one
//! bottom-up sweep suffices: a component is bad iff a member is directly bad
//! or calls a bad component. Unit facts only move `None → Some`, so the
//! in-component iteration terminates in at most `|scc| + 1` rounds.
//!
//! Diagnostic chains must not depend on file visit order, so causes are
//! assigned by a level-synchronous BFS from the direct sites over reverse
//! edges: every affected function gets a hop depth, and its recorded cause
//! is the edge to a minimal-depth callee, tie-broken by the callee's stable
//! key (path, line, name) and the call-site line. Depths strictly decrease
//! along a chain, so reconstruction always terminates.

use std::collections::BTreeSet;

use crate::callgraph::{CallGraph, FnId};
use crate::dataflow::{self, Flow};
use crate::items::FileModel;
use crate::lexer::{Tok, TokKind};
use crate::passes::unit_flow::{self, Unit};
use crate::{callgraph, cfg, passes::entropy};

/// Why a function carries a transitive property (may panic, impure).
#[derive(Debug, Clone)]
pub enum Cause {
    /// The property holds at a site in this function's own body.
    Direct {
        /// Human-readable description of the site (`.unwrap()`, `Instant::now`…).
        what: String,
        /// 1-based line of the site.
        line: usize,
    },
    /// The property is inherited through a call.
    Via {
        callee: FnId,
        /// 1-based line of the call site in this function.
        line: usize,
    },
}

/// One named parameter of a function signature.
#[derive(Debug, Clone)]
pub struct Param {
    /// The binding name, when the pattern is a single identifier.
    pub name: Option<String>,
    /// The unit the name declares (`cost_ns` → `Ns`).
    pub unit: Option<Unit>,
}

/// Per-function summaries, all vectors parallel to `graph.fns`.
pub struct Summaries {
    /// Why the function may panic; `None` when it cannot (as far as the
    /// token model sees — unmodeled code hides findings, never invents them).
    pub may_panic: Vec<Option<Cause>>,
    /// Why the function is impure; `None` when it is pure.
    pub impure: Vec<Option<Cause>>,
    /// Parameter names and units, in declaration order.
    pub params: Vec<Vec<Param>>,
    /// The unit of the returned value, when one can be derived.
    pub ret_unit: Vec<Option<Unit>>,
    /// `(file index, 1-based line)` of every audited allow comment that
    /// exempted a panic site. These audits are *live* even though no rule
    /// fires on their line any more — the finding they prevent would land at
    /// a `pub` API function far away.
    pub consumed_audits: BTreeSet<(usize, usize)>,
}

impl Summaries {
    /// Summaries with no audit exemptions (every panic site counts).
    pub fn compute(models: &[FileModel], graph: &CallGraph) -> Summaries {
        Summaries::compute_with_audit(models, graph, &|_, _| false)
    }

    /// Summaries honoring audited suppressions: `audited(file_idx, line)`
    /// returns true when a panic site on that line is covered by an
    /// `allow(no-panic-in-lib)` / `allow(panic-path)` comment.
    pub(crate) fn compute_with_audit(
        models: &[FileModel],
        graph: &CallGraph,
        audited: &dyn Fn(usize, usize) -> bool,
    ) -> Summaries {
        let n = graph.fns.len();
        let mut consumed = BTreeSet::new();

        let mut direct_panic: Vec<Option<(String, usize)>> = vec![None; n];
        let mut direct_impure: Vec<Option<(String, usize)>> = vec![None; n];
        let mut params = Vec::with_capacity(n);
        for (id, &(fi, gi)) in graph.fns.iter().enumerate() {
            let m = &models[fi];
            let f = &m.fns[gi];
            params.push(parse_params(m, f.name_tok));
            let Some((s, e)) = f.body else { continue };
            let nested = nested_ranges(m, gi);
            direct_panic[id] = scan_panic(m, fi, s, e, &nested, audited, &mut consumed);
            direct_impure[id] = scan_impure(m, s, e, &nested);
        }

        let comps = sccs(graph);
        let may_panic_set = close_over_calls(graph, &comps, &direct_panic);
        let impure_set = close_over_calls(graph, &comps, &direct_impure);
        let may_panic = assign_causes(models, graph, &direct_panic, &may_panic_set);
        let impure = assign_causes(models, graph, &direct_impure, &impure_set);

        let ret_unit = ret_units(models, graph, &comps);

        Summaries { may_panic, impure, params, ret_unit, consumed_audits: consumed }
    }

    /// The cause chain from `id` down to the direct site: each step is the
    /// cause recorded at the current function, the last step is always
    /// [`Cause::Direct`]. Empty when the property does not hold at `id`.
    pub fn chain(causes: &[Option<Cause>], id: FnId) -> Vec<&Cause> {
        let mut out = Vec::new();
        let mut cur = id;
        // Depths strictly decrease along `Via` links; the bound is a
        // belt-and-braces guard against a malformed cause vector.
        for _ in 0..=causes.len() {
            let Some(c) = &causes[cur] else { break };
            out.push(c);
            match c {
                Cause::Direct { .. } => break,
                Cause::Via { callee, .. } => cur = *callee,
            }
        }
        out
    }
}

/// Strongly connected components in reverse topological order (callees
/// before callers) — iterative Tarjan, so deep call chains cannot overflow
/// the checker's own stack.
pub fn sccs(graph: &CallGraph) -> Vec<Vec<FnId>> {
    let n = graph.fns.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<FnId> = Vec::new();
    let mut next = 0usize;
    let mut out: Vec<Vec<FnId>> = Vec::new();
    let mut frames: Vec<(FnId, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        index[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root);
        on_stack[root] = true;
        frames.push((root, 0));
        while let Some(frame) = frames.last_mut() {
            let v = frame.0;
            if frame.1 < graph.edges[v].len() {
                let w = graph.edges[v][frame.1].callee;
                frame.1 += 1;
                if index[w] == usize::MAX {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last() {
                    let u = parent.0;
                    low[u] = low[u].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// Closes a directly-observed property over the call graph, bottom-up: a
/// component has the property iff a member has it directly or any member
/// calls a function that already has it. One sweep suffices because the
/// components arrive callees-first and the property is monotone.
fn close_over_calls(
    graph: &CallGraph,
    comps: &[Vec<FnId>],
    direct: &[Option<(String, usize)>],
) -> Vec<bool> {
    let mut bad = vec![false; graph.fns.len()];
    for comp in comps {
        let comp_bad = comp
            .iter()
            .any(|&f| direct[f].is_some() || graph.edges[f].iter().any(|e| bad[e.callee]));
        if comp_bad {
            for &f in comp {
                bad[f] = true;
            }
        }
    }
    bad
}

/// Assigns each affected function a deterministic [`Cause`]: direct sites
/// keep their own, transitive ones record the edge to a minimal-hop-depth
/// callee, tie-broken by the callee's (path, line, name) and the call line —
/// independent of the order files were visited in.
fn assign_causes(
    models: &[FileModel],
    graph: &CallGraph,
    direct: &[Option<(String, usize)>],
    bad: &[bool],
) -> Vec<Option<Cause>> {
    let n = graph.fns.len();
    let mut rev: Vec<Vec<FnId>> = vec![Vec::new(); n];
    for (caller, edges) in graph.edges.iter().enumerate() {
        if !bad[caller] {
            continue;
        }
        for e in edges {
            if bad[e.callee] {
                rev[e.callee].push(caller);
            }
        }
    }

    let mut depth = vec![usize::MAX; n];
    let mut level: Vec<FnId> = (0..n).filter(|&f| direct[f].is_some()).collect();
    for &f in &level {
        depth[f] = 0;
    }
    let mut d = 0usize;
    while !level.is_empty() {
        d += 1;
        let mut next = BTreeSet::new();
        for &v in &level {
            for &c in &rev[v] {
                if depth[c] == usize::MAX {
                    next.insert(c);
                }
            }
        }
        level = next.into_iter().collect();
        for &f in &level {
            depth[f] = d;
        }
    }

    let stable_key = |f: FnId| {
        let (fi, gi) = graph.fns[f];
        (&models[fi].rel_path, models[fi].fns[gi].line, &models[fi].fns[gi].name)
    };
    (0..n)
        .map(|f| {
            if let Some((what, line)) = &direct[f] {
                return Some(Cause::Direct { what: what.clone(), line: *line });
            }
            if !bad[f] {
                return None;
            }
            graph.edges[f]
                .iter()
                .filter(|e| depth[e.callee] != usize::MAX && depth[e.callee] + 1 == depth[f])
                .min_by_key(|e| (stable_key(e.callee), e.line, e.tok))
                .map(|e| Cause::Via { callee: e.callee, line: e.line })
        })
        .collect()
}

/// Vocabulary the may-panic scan recognizes: a deliberate under-
/// approximation. Division by a *variable* and arithmetic overflow are out
/// of scope — at the token level every `/` on `u64`s would flag, and almost
/// all of the workspace's division is float (which never panics). See
/// DESIGN.md §15 for the direction-of-error argument.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Scans `f`'s body for a panic site, skipping nested fn bodies and sites
/// whose line carries an audited allow (those are recorded in `consumed`).
fn scan_panic(
    m: &FileModel,
    fi: usize,
    s: usize,
    e: usize,
    nested: &[(usize, usize)],
    audited: &dyn Fn(usize, usize) -> bool,
    consumed: &mut BTreeSet<(usize, usize)>,
) -> Option<(String, usize)> {
    let toks = &m.toks;
    let e = e.min(toks.len().saturating_sub(1));
    let mut i = s;
    while i <= e {
        if let Some(&(_, ne)) = nested.iter().find(|&&(ns, ne)| ns <= i && i <= ne) {
            i = ne + 1;
            continue;
        }
        let t = &toks[i];
        let site: Option<String> = if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].is_op(".")
            && toks.get(i + 1).is_some_and(|n| n.is_op("("))
        {
            Some(format!(".{}(…)", t.text))
        } else if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_op("!"))
        {
            Some(format!("{}!", t.text))
        } else if is_index_open(toks, i) {
            Some("unchecked `[…]` indexing".to_string())
        } else if (t.is_op("/") || t.is_op("%"))
            && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Num && n.text == "0")
        {
            Some(format!("literal `{} 0` divisor", t.text))
        } else {
            None
        };
        if let Some(what) = site {
            if audited(fi, t.line) {
                consumed.insert((fi, t.line));
            } else {
                return Some((what, t.line));
            }
        }
        i += 1;
    }
    None
}

/// True when `toks[k]` is a `[` that indexes a value: the previous token
/// ends an expression (identifier, `)`, `]`) rather than opening a pattern,
/// type, attribute, or macro.
fn is_index_open(toks: &[Tok], k: usize) -> bool {
    if !toks[k].is_op("[") || k == 0 {
        return false;
    }
    let p = &toks[k - 1];
    match p.kind {
        TokKind::Ident => {
            !callgraph::is_call_keyword(&p.text)
                && !matches!(p.text.as_str(), "mut" | "ref" | "dyn" | "impl")
        }
        TokKind::Op => p.is_op(")") || p.is_op("]"),
        _ => false,
    }
}

/// Methods that mutate their receiver — hitting one on an ALL_CAPS (static)
/// receiver is direct impurity.
const MUTATING_METHODS: &[&str] = &[
    "lock",
    "write",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "get_or_init",
    "get_or_insert_with",
    "set",
    "replace",
    "borrow_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "clear",
];

/// True when `name` looks like a `static`/`const` item: at least one ASCII
/// uppercase letter and nothing lowercase.
fn is_static_name(name: &str) -> bool {
    name.len() >= 2
        && name.chars().any(|c| c.is_ascii_uppercase())
        && name.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Scans `f`'s body for direct impurity: a clock/entropy read, or a
/// mutation of an ALL_CAPS static (mutating method call or assignment).
fn scan_impure(
    m: &FileModel,
    s: usize,
    e: usize,
    nested: &[(usize, usize)],
) -> Option<(String, usize)> {
    let toks = &m.toks;
    let e = e.min(toks.len().saturating_sub(1));
    if let Some((label, line)) = entropy::direct_source(toks, s, e) {
        // Entropy sources in nested fns are vanishingly rare and the check
        // is an over-approximation in the safe direction for *this* pass's
        // consumers (purity violations are verified against direct causes).
        if !nested
            .iter()
            .any(|&(ns, ne)| toks[ns..=ne.min(toks.len() - 1)].iter().any(|t| t.line == line))
        {
            return Some((label, line));
        }
    }
    let mut i = s;
    while i <= e {
        if let Some(&(_, ne)) = nested.iter().find(|&&(ns, ne)| ns <= i && i <= ne) {
            i = ne + 1;
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident && is_static_name(&t.text) {
            if toks.get(i + 1).is_some_and(|n| n.is_op("."))
                && toks.get(i + 2).is_some_and(|n| MUTATING_METHODS.contains(&n.text.as_str()))
                && toks.get(i + 3).is_some_and(|n| n.is_op("("))
            {
                return Some((
                    format!("`{}.{}(…)` mutates a static", t.text, toks[i + 2].text),
                    t.line,
                ));
            }
            if toks.get(i + 1).is_some_and(|n| {
                matches!(n.text.as_str(), "=" | "+=" | "-=" | "*=" | "/=" | "|=" | "&=" | "^=")
                    && n.kind == TokKind::Op
            }) {
                return Some((format!("assignment to static `{}`", t.text), t.line));
            }
        }
        i += 1;
    }
    None
}

/// Body ranges of fns nested strictly inside fn `gi`'s body — their tokens
/// belong to the nested item, not to `gi`.
fn nested_ranges(m: &FileModel, gi: usize) -> Vec<(usize, usize)> {
    let Some((s, e)) = m.fns[gi].body else { return Vec::new() };
    m.fns
        .iter()
        .enumerate()
        .filter(|&(gj, _)| gj != gi)
        .filter_map(|(_, g)| g.body)
        .filter(|&(s2, e2)| s < s2 && e2 < e)
        .collect()
}

/// Parses the parameter list following the fn name at `name_tok`: generics
/// are skipped (`>>` closes two angles — the lexer munches it as one op),
/// parameters split at depth-0 commas, each name read as the idents before
/// the top-level `:` (exactly one ident → a named binding; `self` and
/// tuple/struct patterns carry no unit).
fn parse_params(m: &FileModel, name_tok: usize) -> Vec<Param> {
    let toks = &m.toks;
    let mut i = name_tok + 1;
    if toks.get(i).is_some_and(|t| t.is_op("<")) {
        let mut depth = 0i64;
        while i < toks.len() {
            if toks[i].kind == TokKind::Op {
                match toks[i].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    if !toks.get(i).is_some_and(|t| t.is_op("(")) {
        return Vec::new();
    }
    let open = i;
    let Some(close) = cfg::matching(toks, open, "(", ")") else { return Vec::new() };

    let mut out = Vec::new();
    let mut seg_start = open + 1;
    let mut depth = 0i64;
    let mut k = open + 1;
    while k <= close {
        let t = &toks[k];
        let boundary = k == close || (depth == 0 && t.is_op(","));
        if !boundary {
            if t.is_op("(") || t.is_op("[") || t.is_op("<") {
                depth += 1;
            } else if t.is_op(")") || t.is_op("]") || t.is_op(">") {
                depth -= 1;
            } else if t.is_op(">>") {
                depth -= 2;
            }
            k += 1;
            continue;
        }
        if seg_start < k {
            out.push(parse_param(&toks[seg_start..k]));
        }
        seg_start = k + 1;
        k += 1;
    }
    out
}

/// One parameter segment (tokens between commas): the binding name is the
/// single depth-0 identifier before the `:` (skipping `mut`); `self`
/// receivers and multi-ident patterns yield `name: None`.
fn parse_param(seg: &[Tok]) -> Param {
    let mut names = Vec::new();
    let mut depth = 0i64;
    for t in seg {
        if t.is_op("(") || t.is_op("[") {
            depth += 1;
        } else if t.is_op(")") || t.is_op("]") {
            depth -= 1;
        } else if depth == 0 && t.is_op(":") {
            break;
        } else if depth == 0 && t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref" {
            names.push(t.text.as_str());
        }
    }
    let name = match names.as_slice() {
        [one] if *one != "self" => Some(one.to_string()),
        _ => None,
    };
    let unit = name.as_deref().and_then(unit_flow::unit_of_name);
    Param { name, unit }
}

/// Return units, bottom-up with an in-component fixpoint: a function's unit
/// comes from its own name, else from agreeing `return <ident>;` /
/// `return <call>(…);` statements and the single-ident or single-call tail
/// expression, with idents resolved through final `let`-chain facts and
/// calls through the callee summaries computed so far. Facts only move
/// `None → Some`, so the iteration terminates.
fn ret_units(models: &[FileModel], graph: &CallGraph, comps: &[Vec<FnId>]) -> Vec<Option<Unit>> {
    let mut ret: Vec<Option<Unit>> = vec![None; graph.fns.len()];
    for comp in comps {
        loop {
            let mut changed = false;
            for &f in comp {
                if ret[f].is_some() {
                    continue;
                }
                let u = ret_unit_of(models, graph, f, &ret);
                if u.is_some() {
                    ret[f] = u;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
    ret
}

fn ret_unit_of(
    models: &[FileModel],
    graph: &CallGraph,
    f: FnId,
    ret: &[Option<Unit>],
) -> Option<Unit> {
    let (fi, gi) = graph.fns[f];
    let m = &models[fi];
    let item = &m.fns[gi];
    if let Some(u) = unit_flow::unit_of_name(&item.name) {
        return Some(u);
    }
    let (s, e) = item.body?;
    let toks = &m.toks;
    let e = e.min(toks.len().saturating_sub(1));

    // Final `let`-chain facts for the whole body: an approximation (facts
    // from after a `return` can leak backwards) that only matters when the
    // same name is rebound across a `return` — losing or gaining a fact
    // there can hide a unit, never fabricate a contradiction-free wrong one,
    // because all candidates must still agree.
    let mut flow: Flow<Unit> = Flow::new();
    for b in dataflow::let_bindings(toks, s, e) {
        unit_flow::apply_binding(toks, &b, &mut flow);
    }
    // The unit a returned-value expression starting at `k` yields, when it
    // is a bare identifier or a single call whose callees agree.
    let value_unit = |k: usize, terminator: &str| -> Option<Unit> {
        let t = toks.get(k)?;
        if t.kind != TokKind::Ident {
            return None;
        }
        if toks.get(k + 1).is_some_and(|n| n.is_op(terminator)) {
            return unit_flow::unit_at(toks, k, &flow);
        }
        None
    };

    let mut candidates: Vec<Option<Unit>> = Vec::new();
    // `return x;` / `return helper(…);`
    for k in s..=e {
        if !toks[k].is_ident("return") {
            continue;
        }
        if toks.get(k + 2).is_some_and(|n| n.is_op("(")) {
            candidates.push(call_ret_unit(graph, f, k + 1, ret));
        } else {
            candidates.push(value_unit(k + 1, ";"));
        }
    }
    // Tail expression: the token(s) directly before the closing brace,
    // preceded by a statement boundary.
    if e >= 2 {
        let last = e - 1;
        let starts_stmt =
            |k: usize| k == s || toks[k].is_op(";") || toks[k].is_op("{") || toks[k].is_op("}");
        if toks[last].kind == TokKind::Ident && starts_stmt(last - 1) {
            candidates.push(unit_flow::unit_at(toks, last, &flow));
        } else if toks[last].is_op(")") {
            // Walk back to the call's opening paren, then to its name.
            let mut depth = 0i64;
            let mut k = last;
            loop {
                if toks[k].is_op(")") {
                    depth += 1;
                } else if toks[k].is_op("(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == s {
                    break;
                }
                k -= 1;
            }
            if depth == 0 && k > s && toks[k - 1].kind == TokKind::Ident {
                candidates.push(call_ret_unit(graph, f, k - 1, ret));
            }
        }
    }

    // All observed returns must carry the same known unit.
    let mut agreed: Option<Unit> = None;
    for c in candidates {
        match (c, agreed) {
            (None, _) => return None,
            (Some(u), None) => agreed = Some(u),
            (Some(u), Some(a)) if u != a => return None,
            _ => {}
        }
    }
    agreed
}

/// The unit returned by the call whose name sits at token `name_tok` in fn
/// `f`'s file — all resolved callees must agree on it.
fn call_ret_unit(
    graph: &CallGraph,
    f: FnId,
    name_tok: usize,
    ret: &[Option<Unit>],
) -> Option<Unit> {
    let mut agreed: Option<Unit> = None;
    let mut any = false;
    for e in graph.edges[f].iter().filter(|e| e.tok == name_tok) {
        any = true;
        match (ret[e.callee], agreed) {
            (None, _) => return None,
            (Some(u), None) => agreed = Some(u),
            (Some(u), Some(a)) if u != a => return None,
            _ => {}
        }
    }
    if any {
        agreed
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(files: &[(&str, &str)]) -> (Vec<FileModel>, CallGraph) {
        let models: Vec<FileModel> = files.iter().map(|(p, s)| FileModel::build(p, s)).collect();
        let graph = callgraph::build(&models);
        (models, graph)
    }

    fn id_of(models: &[FileModel], graph: &CallGraph, name: &str) -> FnId {
        graph
            .fns
            .iter()
            .position(|&(fi, gi)| models[fi].fns[gi].name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn direct_and_transitive_panic_are_summarized() {
        let (models, graph) = setup(&[(
            "crates/cluster/src/x.rs",
            "pub fn api() -> u64 { helper() }\nfn helper() -> u64 { inner() }\nfn inner() -> u64 { V[0] }\nfn safe() -> u64 { 1 }\n",
        )]);
        let s = Summaries::compute(&models, &graph);
        let api = id_of(&models, &graph, "api");
        let inner = id_of(&models, &graph, "inner");
        let safe = id_of(&models, &graph, "safe");
        assert!(matches!(s.may_panic[inner], Some(Cause::Direct { .. })), "{:?}", s.may_panic);
        assert!(matches!(s.may_panic[api], Some(Cause::Via { .. })), "{:?}", s.may_panic);
        assert!(s.may_panic[safe].is_none());
        // The chain walks api → helper → inner and ends at the direct site.
        let chain = Summaries::chain(&s.may_panic, api);
        assert_eq!(chain.len(), 3, "{chain:?}");
        assert!(matches!(chain[2], Cause::Direct { what, .. } if what.contains("indexing")));
    }

    #[test]
    fn recursion_terminates_and_summarizes() {
        let (models, graph) = setup(&[(
            "crates/cluster/src/x.rs",
            "fn ping(n: u64) -> u64 { if n == 0 { 0 } else { pong(n) } }\nfn pong(n: u64) -> u64 { ping(n - 1) }\nfn looping() -> u64 { looping() }\nfn bad(n: u64) -> u64 { if n == 0 { x.unwrap() } else { bad(n - 1) } }\n",
        )]);
        let s = Summaries::compute(&models, &graph);
        assert!(s.may_panic[id_of(&models, &graph, "ping")].is_none());
        assert!(s.may_panic[id_of(&models, &graph, "looping")].is_none());
        assert!(s.may_panic[id_of(&models, &graph, "bad")].is_some());
    }

    #[test]
    fn audited_sites_do_not_count_and_are_consumed() {
        let src = "pub fn api() -> u64 {\n    // sjc-lint: allow(no-panic-in-lib) — index proven in bounds\n    V[0]\n}\n";
        let (models, graph) = setup(&[("crates/cluster/src/x.rs", src)]);
        let allows = crate::allows_for(src);
        let starts = crate::stmt_starts(src);
        let audited = |_fi: usize, line: usize| {
            crate::is_suppressed(&allows, &starts, crate::Rule::NoPanicInLib, line)
        };
        let s = Summaries::compute_with_audit(&models, &graph, &audited);
        assert!(s.may_panic[0].is_none(), "{:?}", s.may_panic);
        assert_eq!(s.consumed_audits.iter().collect::<Vec<_>>(), [&(0, 3)]);
    }

    #[test]
    fn purity_sees_clock_and_static_mutation_transitively() {
        let (models, graph) = setup(&[(
            "crates/data/src/x.rs",
            "pub fn seam() -> u64 { stamp() }\nfn stamp() -> u64 { HITS.fetch_add(1, Ordering::Relaxed) }\nfn clock() -> u64 { Instant::now() }\nfn pure_math(n: u64) -> u64 { n.wrapping_mul(3) }\n",
        )]);
        let s = Summaries::compute(&models, &graph);
        assert!(matches!(s.impure[id_of(&models, &graph, "stamp")], Some(Cause::Direct { .. })));
        assert!(matches!(s.impure[id_of(&models, &graph, "seam")], Some(Cause::Via { .. })));
        assert!(s.impure[id_of(&models, &graph, "clock")].is_some());
        assert!(s.impure[id_of(&models, &graph, "pure_math")].is_none());
    }

    #[test]
    fn param_and_return_units_are_parsed() {
        let (models, graph) = setup(&[(
            "crates/core/src/x.rs",
            "pub fn cost(read_bytes: u64, ns_per_byte: u64) -> u64 { read_bytes * ns_per_byte }\npub fn total_ns(a: u64) -> u64 { a }\npub fn forward(v: u64) -> u64 { scan_ns(v) }\nfn scan_ns(v: u64) -> u64 { v }\nfn via_let(read_bytes: u64) -> u64 {\n    let total = read_bytes;\n    total\n}\n",
        )]);
        let s = Summaries::compute(&models, &graph);
        let cost = id_of(&models, &graph, "cost");
        assert_eq!(s.params[cost].len(), 2);
        assert_eq!(s.params[cost][0].unit, Some(Unit::Bytes));
        assert_eq!(s.params[cost][1].unit, None, "rates carry no unit");
        assert_eq!(s.ret_unit[id_of(&models, &graph, "total_ns")], Some(Unit::Ns));
        // Tail call resolves through the callee's name-declared unit.
        assert_eq!(s.ret_unit[id_of(&models, &graph, "forward")], Some(Unit::Ns));
        // Let-chain: bytes flow to the tail identifier.
        assert_eq!(s.ret_unit[id_of(&models, &graph, "via_let")], Some(Unit::Bytes));
    }

    #[test]
    fn sccs_emit_callees_first() {
        let (models, graph) = setup(&[(
            "crates/cluster/src/x.rs",
            "fn a() { b(); }\nfn b() { c(); a(); }\nfn c() {}\n",
        )]);
        let comps = sccs(&graph);
        let c = id_of(&models, &graph, "c");
        let a = id_of(&models, &graph, "a");
        // c's singleton component comes before the {a, b} cycle.
        let pos = |f: FnId| comps.iter().position(|comp| comp.contains(&f)).unwrap();
        assert!(pos(c) < pos(a), "{comps:?}");
        assert_eq!(comps[pos(a)].len(), 2, "{comps:?}");
    }
}
