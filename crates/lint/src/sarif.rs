//! SARIF 2.1.0 output.
//!
//! A hand-rolled, std-only emitter for the [SARIF] static-analysis
//! interchange format, so CI can feed `sjc-lint` findings straight into
//! code-scanning UIs (`github/codeql-action/upload-sarif`) without the
//! crate growing a serde dependency. The emitter writes exactly the subset
//! those consumers read: the tool driver with the full rule table, and one
//! result per violation with a physical location.
//!
//! [`validate`] is the matching self-check: it re-parses an emitted
//! document with the JSON parser from [`crate::json`] and verifies the
//! structural invariants (version string, rule table present, every
//! result's `ruleId`/`ruleIndex` consistent, 1-based line numbers). The
//! round-trip test in the tier-1 gate runs it over the live workspace scan.
//!
//! [SARIF]: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html

use std::fmt::Write as _;

use crate::json::{parse_value, Value};
use crate::{Rule, Severity, Violation};

const SCHEMA_URI: &str = "https://json.schemastore.org/sarif-2.1.0.json";
const SARIF_VERSION: &str = "2.1.0";

/// The full rule table, in the order `ruleIndex` refers to.
fn all_rules() -> Vec<Rule> {
    let mut rules = Rule::ALL.to_vec();
    rules.push(Rule::BadSuppression);
    rules
}

fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => "error",
        Severity::Warning => "warning",
    }
}

/// JSON string escaping (same contract as the json module's emitter).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the violations as a single-run SARIF 2.1.0 document.
pub fn report(violations: &[Violation]) -> String {
    let rules = all_rules();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"$schema\": \"{SCHEMA_URI}\",");
    let _ = writeln!(out, "  \"version\": \"{SARIF_VERSION}\",");
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"sjc-lint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/sjc-lint\",\n");
    out.push_str("          \"rules\": [\n");
    let n = rules.len();
    for (i, rule) in rules.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let _ = writeln!(
            out,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"defaultConfiguration\": {{\"level\": \"{}\"}}}}{}",
            rule.name(),
            escape(rule.summary()),
            level(rule.default_severity()),
            comma
        );
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let m = violations.len();
    for (i, v) in violations.iter().enumerate() {
        let comma = if i + 1 < m { "," } else { "" };
        let idx = rules.iter().position(|r| *r == v.rule).unwrap_or(0);
        // Interprocedural findings carry their call chain as SARIF
        // relatedLocations — one hop per entry, rendered by code-scanning
        // UIs as clickable steps under the result.
        let related = if v.related.is_empty() {
            String::new()
        } else {
            let hops = v
                .related
                .iter()
                .map(|r| {
                    format!(
                        "{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \
                         \"{}\"}}, \"region\": {{\"startLine\": {}}}}}, \"message\": \
                         {{\"text\": \"{}\"}}}}",
                        escape(&r.path),
                        r.line.max(1),
                        escape(&r.note)
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(", \"relatedLocations\": [{hops}]")
        };
        let _ = writeln!(
            out,
            "        {{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"{}\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": \
             {}}}}}}}]{}}}{}",
            v.rule.name(),
            idx,
            level(v.severity),
            escape(&v.message),
            escape(&v.path),
            v.line.max(1),
            related,
            comma
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Structural self-check for an emitted SARIF document. Std-only: uses the
/// crate's own JSON parser, so the check works in tests and CI without any
/// external schema tooling.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = parse_value(text)?;
    let version = doc.get("version").and_then(Value::as_str).ok_or("sarif: missing \"version\"")?;
    if version != SARIF_VERSION {
        return Err(format!("sarif: version {version:?}, expected {SARIF_VERSION:?}"));
    }
    let runs = doc.get("runs").and_then(Value::as_array).ok_or("sarif: missing \"runs\"")?;
    if runs.is_empty() {
        return Err("sarif: \"runs\" must be non-empty".to_string());
    }
    for run in runs {
        let driver =
            run.get("tool").and_then(|t| t.get("driver")).ok_or("sarif: missing tool.driver")?;
        if driver.get("name").and_then(Value::as_str).is_none() {
            return Err("sarif: driver has no name".to_string());
        }
        let rules =
            driver.get("rules").and_then(Value::as_array).ok_or("sarif: driver has no rules")?;
        let ids: Vec<&str> =
            rules.iter().filter_map(|r| r.get("id").and_then(Value::as_str)).collect();
        if ids.len() != rules.len() {
            return Err("sarif: every rule needs a string \"id\"".to_string());
        }
        let results =
            run.get("results").and_then(Value::as_array).ok_or("sarif: missing results")?;
        for (i, res) in results.iter().enumerate() {
            let rule_id = res
                .get("ruleId")
                .and_then(Value::as_str)
                .ok_or(format!("sarif: result {i} has no ruleId"))?;
            let idx = res
                .get("ruleIndex")
                .and_then(Value::as_num)
                .ok_or(format!("sarif: result {i} has no ruleIndex"))?;
            match ids.get(idx as usize) {
                Some(id) if *id == rule_id => {}
                _ => {
                    return Err(format!(
                        "sarif: result {i} ruleIndex {idx} does not resolve to {rule_id:?}"
                    ));
                }
            }
            if res.get("message").and_then(|m| m.get("text")).and_then(Value::as_str).is_none() {
                return Err(format!("sarif: result {i} has no message.text"));
            }
            let locs = res
                .get("locations")
                .and_then(Value::as_array)
                .ok_or(format!("sarif: result {i} has no locations"))?;
            for loc in locs {
                check_physical(loc, i)?;
            }
            // relatedLocations are optional, but when present each hop must
            // carry the same physical-location shape plus a message.text
            // note (the chain step description).
            if let Some(related) = res.get("relatedLocations") {
                let hops = related
                    .as_array()
                    .ok_or(format!("sarif: result {i} relatedLocations must be an array"))?;
                for hop in hops {
                    check_physical(hop, i)?;
                    if hop
                        .get("message")
                        .and_then(|m| m.get("text"))
                        .and_then(Value::as_str)
                        .is_none()
                    {
                        return Err(format!(
                            "sarif: result {i} relatedLocation has no message.text"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// One location object (a `locations` entry or a `relatedLocations` hop):
/// must hold a `physicalLocation` with an `artifactLocation.uri` and a
/// 1-based `region.startLine`.
fn check_physical(loc: &Value, i: usize) -> Result<(), String> {
    let phys = loc
        .get("physicalLocation")
        .ok_or(format!("sarif: result {i} location lacks physicalLocation"))?;
    if phys.get("artifactLocation").and_then(|a| a.get("uri")).and_then(Value::as_str).is_none() {
        return Err(format!("sarif: result {i} has no artifactLocation.uri"));
    }
    let line = phys
        .get("region")
        .and_then(|r| r.get("startLine"))
        .and_then(Value::as_num)
        .ok_or(format!("sarif: result {i} has no region.startLine"))?;
    if line == 0 {
        return Err(format!("sarif: result {i} startLine must be 1-based"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: Rule, line: usize) -> Violation {
        Violation::new(rule, "crates/x/src/lib.rs", line, "needs \"escaping\"".to_string())
            .with_severity(rule.default_severity())
    }

    #[test]
    fn report_passes_the_validator() {
        let vs = [v(Rule::EntropyTaint, 3), v(Rule::LoopInvariantCall, 9), v(Rule::HotAlloc, 1)];
        let text = report(&vs);
        validate(&text).unwrap();
    }

    #[test]
    fn empty_report_is_valid_and_lists_every_rule() {
        let text = report(&[]);
        validate(&text).unwrap();
        for rule in all_rules() {
            assert!(text.contains(&format!("\"id\": \"{}\"", rule.name())), "{}", rule.name());
        }
    }

    #[test]
    fn warnings_carry_warning_level() {
        let text = report(&[v(Rule::LoopInvariantCall, 2)]);
        let doc = parse_value(&text).unwrap();
        let runs = doc.get("runs").and_then(Value::as_array).unwrap();
        let results = runs[0].get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results[0].get("level").and_then(Value::as_str), Some("warning"));
    }

    #[test]
    fn validator_rejects_inconsistent_rule_index() {
        let idx = all_rules().iter().position(|r| *r == Rule::EntropyTaint).unwrap();
        let text = report(&[v(Rule::EntropyTaint, 3)]);
        // Point the result's ruleIndex at a different rule than its ruleId.
        let tampered = text.replace(&format!("\"ruleIndex\": {idx},"), "\"ruleIndex\": 0,");
        assert_ne!(text, tampered, "expected a result row to tamper with");
        assert!(validate(&tampered).is_err(), "tampered index must fail");
    }

    #[test]
    fn related_locations_are_emitted_and_validated() {
        let vs = [v(Rule::PanicPath, 4).with_related(vec![
            crate::Related {
                path: "crates/par/src/lib.rs".to_string(),
                line: 168,
                note: "calls `helper`".to_string(),
            },
            crate::Related {
                path: "crates/par/src/lib.rs".to_string(),
                line: 171,
                note: ".unwrap()".to_string(),
            },
        ])];
        let text = report(&vs);
        validate(&text).unwrap();
        let doc = parse_value(&text).unwrap();
        let runs = doc.get("runs").and_then(Value::as_array).unwrap();
        let results = runs[0].get("results").and_then(Value::as_array).unwrap();
        let hops = results[0].get("relatedLocations").and_then(Value::as_array).unwrap();
        assert_eq!(hops.len(), 2);
        assert_eq!(
            hops[1].get("message").and_then(|m| m.get("text")).and_then(Value::as_str),
            Some(".unwrap()")
        );
        // A zero startLine in a hop must fail the self-check.
        let tampered = text.replace("\"startLine\": 171", "\"startLine\": 0");
        assert_ne!(text, tampered);
        assert!(validate(&tampered).is_err());
    }

    #[test]
    fn validator_rejects_wrong_version() {
        let text = report(&[]).replace("\"2.1.0\"", "\"9.9\"");
        assert!(validate(&text).is_err());
    }
}
