//! JSON output and the baseline ratchet.
//!
//! The lint crate is deliberately dependency-free, so this module carries a
//! small hand-rolled emitter and a recursive-descent parser that understands
//! exactly the subset the tooling writes: objects, arrays, strings with
//! escapes, and unsigned integers. The parser reads both `--format json`
//! reports and `LINT_BASELINE.json`, which is what makes the round-trip
//! test in the tier-1 gate possible without pulling in serde.
//!
//! The baseline is a **ratchet**: the checked-in `LINT_BASELINE.json`
//! records the violation count the workspace is allowed to have (today:
//! zero everywhere), and `--baseline` fails when any count *rises*.
//! Counts may only go down; lowering the baseline after a cleanup is a
//! one-line diff a reviewer can see.
//!
//! Since schema 2 the counts are per-rule **per-file**: each rule carries a
//! `total` and a `by_file` map. A global count would let a fix in one file
//! mask a regression in another (−1 here, +1 there, net zero); the ratchet
//! compares every `(rule, file)` cell independently, so any per-file
//! increase fails even when the totals balance out.
//!
//! Schema 3 adds the interprocedural rules (`panic-path`,
//! `interproc-unit-flow`, `cache-purity`, `stale-suppression`) to the
//! baseline's zero-cell vocabulary, and report violations may carry a
//! `related` array — one `{path, line, note}` entry per hop of the call
//! chain behind an interprocedural finding.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::{Severity, Violation};

pub const SCHEMA_VERSION: u64 = 3;

/// Escapes `s` as a JSON string body.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full machine-readable report: schema version, per-rule
/// per-file counts, and every violation with its severity.
pub fn report(violations: &[Violation]) -> String {
    let counts = Counts::from_violations(violations);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"total\": {},", counts.total);
    write_by_rule(&mut out, &counts);
    out.push_str(",\n");
    out.push_str("  \"violations\": [\n");
    let n = violations.len();
    for (i, v) in violations.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let sev = match v.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let related = if v.related.is_empty() {
            String::new()
        } else {
            let hops = v
                .related
                .iter()
                .map(|r| {
                    format!(
                        "{{\"path\": \"{}\", \"line\": {}, \"note\": \"{}\"}}",
                        escape(&r.path),
                        r.line,
                        escape(&r.note)
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(", \"related\": [{hops}]")
        };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"{}}}{}",
            v.rule.name(),
            sev,
            escape(&v.path),
            v.line,
            escape(&v.message),
            related,
            comma
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// One rule's counts: a total plus the per-file breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleCount {
    pub total: u64,
    pub by_file: BTreeMap<String, u64>,
}

/// Per-rule per-file violation counts — the shape both the report's header
/// and the checked-in baseline share.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counts {
    pub total: u64,
    pub by_rule: BTreeMap<String, RuleCount>,
}

/// Renders the `"by_rule": { … }` block (no trailing newline or comma).
fn write_by_rule(out: &mut String, counts: &Counts) {
    out.push_str("  \"by_rule\": {\n");
    let n = counts.by_rule.len();
    for (i, (rule, rc)) in counts.by_rule.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let files = rc
            .by_file
            .iter()
            .map(|(f, c)| format!("\"{}\": {}", escape(f), c))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "    \"{}\": {{\"total\": {}, \"by_file\": {{{}}}}}{}",
            escape(rule),
            rc.total,
            files,
            comma
        );
    }
    out.push_str("  }");
}

impl Counts {
    pub fn from_violations(violations: &[Violation]) -> Counts {
        let mut by_rule: BTreeMap<String, RuleCount> = BTreeMap::new();
        // Every known rule appears with an explicit zero so the baseline
        // file documents the full rule set, not just the failing part.
        for rule in crate::Rule::ALL {
            by_rule.insert(rule.name().to_string(), RuleCount::default());
        }
        by_rule.insert(crate::Rule::BadSuppression.name().to_string(), RuleCount::default());
        for v in violations {
            let rc = by_rule.entry(v.rule.name().to_string()).or_default();
            rc.total += 1;
            *rc.by_file.entry(v.path.clone()).or_insert(0) += 1;
        }
        Counts { total: violations.len() as u64, by_rule }
    }

    /// Renders the baseline file format (a report without the violation
    /// list — the counts ARE the contract).
    pub fn to_baseline_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"total\": {},", self.total);
        write_by_rule(&mut out, self);
        out.push_str("\n}\n");
        out
    }

    /// Parses `total` / `by_rule` from baseline OR report JSON. Duplicate
    /// rule or file keys are rejected — "last key wins" would let a
    /// crafted baseline carry two entries for one rule, with the parser
    /// silently picking the laxer one.
    pub fn parse(text: &str) -> Result<Counts, String> {
        let value = Parser { chars: text.chars().collect(), i: 0 }.parse()?;
        let Value::Object(map) = value else {
            return Err("baseline: top level must be an object".to_string());
        };
        let total = match map.iter().find(|(k, _)| k == "total") {
            Some((_, Value::Num(n))) => *n,
            _ => return Err("baseline: missing numeric \"total\"".to_string()),
        };
        let mut by_rule: BTreeMap<String, RuleCount> = BTreeMap::new();
        if let Some((_, Value::Object(rules))) = map.iter().find(|(k, _)| k == "by_rule") {
            for (rule, count) in rules {
                let rc = match count {
                    Value::Object(fields) => parse_rule_count(rule, fields)?,
                    Value::Num(_) => {
                        return Err(format!(
                            "baseline: by_rule[{rule:?}] is a bare number (schema 1) — \
                             regenerate with --write-baseline for the per-file schema \
                             {SCHEMA_VERSION}"
                        ));
                    }
                    _ => {
                        return Err(format!(
                            "baseline: by_rule[{rule:?}] must be an object with \
                             \"total\" and \"by_file\""
                        ));
                    }
                };
                if by_rule.insert(rule.clone(), rc).is_some() {
                    return Err(format!("baseline: duplicate rule key {rule:?}"));
                }
            }
        }
        Ok(Counts { total, by_rule })
    }

    /// The ratchet: every count in `self` (the fresh run) must be ≤ the
    /// baseline's, per rule **and per file**. Rules and files absent from
    /// the baseline are held to zero, so a newly added rule — or a finding
    /// moving into a previously-clean file — cannot smuggle in violations.
    pub fn ratchet_against(&self, baseline: &Counts) -> Result<(), String> {
        let empty = RuleCount::default();
        let mut failures = Vec::new();
        if self.total > baseline.total {
            failures.push(format!(
                "total rose from {} to {} — the baseline only ratchets down",
                baseline.total, self.total
            ));
        }
        for (rule, rc) in &self.by_rule {
            let base = baseline.by_rule.get(rule).unwrap_or(&empty);
            if rc.total > base.total {
                failures.push(format!(
                    "{rule}: {} violation(s), baseline allows {}",
                    rc.total, base.total
                ));
            }
            for (file, &count) in &rc.by_file {
                let allowed = base.by_file.get(file).copied().unwrap_or(0);
                if count > allowed {
                    failures.push(format!(
                        "{rule} in {file}: {count} violation(s), baseline allows {allowed}"
                    ));
                }
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures.join("\n"))
        }
    }
}

/// Parses one rule's `{"total": …, "by_file": {…}}` object.
fn parse_rule_count(rule: &str, fields: &[(String, Value)]) -> Result<RuleCount, String> {
    let total = match fields.iter().find(|(k, _)| k == "total") {
        Some((_, Value::Num(n))) => *n,
        _ => return Err(format!("baseline: by_rule[{rule:?}] is missing numeric \"total\"")),
    };
    let mut by_file = BTreeMap::new();
    if let Some((_, Value::Object(files))) = fields.iter().find(|(k, _)| k == "by_file") {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for (file, count) in files {
            let Value::Num(n) = count else {
                return Err(format!(
                    "baseline: by_rule[{rule:?}].by_file[{file:?}] must be a number"
                ));
            };
            if !seen.insert(file) {
                return Err(format!("baseline: duplicate file key {file:?} under {rule:?}"));
            }
            by_file.insert(file.clone(), *n);
        }
    }
    Ok(RuleCount { total, by_file })
}

/// The subset of JSON values the tooling emits. `Object` keeps insertion
/// order (and duplicates) so callers can detect repeated keys.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Object(Vec<(String, Value)>),
    Array(Vec<Value>),
    Str(String),
    Num(u64),
    Bool(bool),
    Null,
}

impl Value {
    /// First value under `key` when `self` is an object.
    pub(crate) fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_num(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses arbitrary tooling JSON (used by the SARIF self-check).
pub(crate) fn parse_value(text: &str) -> Result<Value, String> {
    Parser { chars: text.chars().collect(), i: 0 }.parse()
}

struct Parser {
    chars: Vec<char>,
    i: usize,
}

impl Parser {
    fn parse(mut self) -> Result<Value, String> {
        let v = self.value()?;
        self.ws();
        if self.i < self.chars.len() {
            return Err(format!("trailing content at offset {}", self.i));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while self.i < self.chars.len() && self.chars[self.i].is_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.ws();
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {c:?} at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some(c) if c.is_ascii_digit() => self.number(),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            other => Err(format!("unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for c in word.chars() {
            if self.peek() != Some(c) {
                return Err(format!("bad literal at offset {}", self.i));
            }
            self.i += 1;
        }
        Ok(v)
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut entries = Vec::new();
        self.ws();
        if self.peek() == Some('}') {
            self.i += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.expect(':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some('}') => {
                    self.i += 1;
                    return Ok(Value::Object(entries));
                }
                other => return Err(format!("expected , or }} got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some(']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some('"') {
            return Err(format!("expected string at offset {}", self.i));
        }
        self.i += 1;
        let mut out = String::new();
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'u' => {
                            let hex: String = self.chars.iter().skip(self.i).take(4).collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        c => out.push(c),
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        text.parse::<u64>().map(Value::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;

    fn v(rule: Rule, line: usize) -> Violation {
        Violation::new(rule, "crates/x/src/lib.rs", line, "msg with \"quotes\"".to_string())
    }

    #[test]
    fn report_round_trips_through_the_parser() {
        let vs = [v(Rule::EntropyTaint, 3), v(Rule::EntropyTaint, 9), v(Rule::ErrorFlow, 1)];
        let text = report(&vs);
        let counts = Counts::parse(&text).unwrap();
        assert_eq!(counts.total, 3);
        assert_eq!(counts.by_rule["entropy-taint"].total, 2);
        assert_eq!(counts.by_rule["entropy-taint"].by_file["crates/x/src/lib.rs"], 2);
        assert_eq!(counts.by_rule["error-flow"].total, 1);
        assert_eq!(counts.by_rule["par-closure-race"].total, 0);
        assert_eq!(counts, Counts::from_violations(&vs));
    }

    #[test]
    fn baseline_json_round_trips() {
        let counts = Counts::from_violations(&[v(Rule::NoPanicInLib, 2)]);
        let parsed = Counts::parse(&counts.to_baseline_json()).unwrap();
        assert_eq!(parsed, counts);
    }

    #[test]
    fn ratchet_only_goes_down() {
        let base = Counts::from_violations(&[v(Rule::ErrorFlow, 1)]);
        let clean = Counts::from_violations(&[]);
        let worse = Counts::from_violations(&[v(Rule::ErrorFlow, 1), v(Rule::ErrorFlow, 2)]);
        assert!(clean.ratchet_against(&base).is_ok());
        assert!(base.ratchet_against(&base).is_ok());
        assert!(worse.ratchet_against(&base).is_err());
        // A rule missing from the baseline is held to zero.
        let unseen = Counts::from_violations(&[v(Rule::EntropyTaint, 1)]);
        let empty = Counts { total: 10, by_rule: BTreeMap::new() };
        assert!(unseen.ratchet_against(&empty).is_err());
    }

    #[test]
    fn ratchet_compares_every_file_cell() {
        // Same rule totals, but the violation moved from a.rs to b.rs:
        // the per-file ratchet must reject the move even though the
        // aggregate counts balance out.
        let mk = |path: &str| Violation::new(Rule::ErrorFlow, path, 1, "m".to_string());
        let base = Counts::from_violations(&[mk("crates/x/src/a.rs")]);
        let moved = Counts::from_violations(&[mk("crates/x/src/b.rs")]);
        assert_eq!(base.total, moved.total);
        assert_eq!(base.by_rule["error-flow"].total, moved.by_rule["error-flow"].total);
        let err = moved.ratchet_against(&base).unwrap_err();
        assert!(err.contains("crates/x/src/b.rs"), "{err}");
    }

    #[test]
    fn parse_rejects_duplicate_rule_keys() {
        let text = "{\"total\": 2, \"by_rule\": {\
                    \"error-flow\": {\"total\": 2, \"by_file\": {}},\
                    \"error-flow\": {\"total\": 0, \"by_file\": {}}}}";
        let err = Counts::parse(text).unwrap_err();
        assert!(err.contains("duplicate rule key"), "{err}");
    }

    #[test]
    fn parse_rejects_duplicate_file_keys() {
        let text = "{\"total\": 2, \"by_rule\": {\"error-flow\": {\"total\": 2, \
                    \"by_file\": {\"a.rs\": 2, \"a.rs\": 0}}}}";
        let err = Counts::parse(text).unwrap_err();
        assert!(err.contains("duplicate file key"), "{err}");
    }

    #[test]
    fn parse_rejects_schema_one_flat_counts() {
        let text = "{\"total\": 1, \"by_rule\": {\"error-flow\": 1}}";
        let err = Counts::parse(text).unwrap_err();
        assert!(err.contains("schema 1") && err.contains("--write-baseline"), "{err}");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Counts::parse("").is_err());
        assert!(Counts::parse("[1, 2]").is_err());
        assert!(Counts::parse("{\"total\": \"three\"}").is_err());
        assert!(Counts::parse("{\"total\": 1} trailing").is_err());
    }
}
