//! JSON output and the baseline ratchet.
//!
//! The lint crate is deliberately dependency-free, so this module carries a
//! small hand-rolled emitter and a recursive-descent parser that understands
//! exactly the subset the tooling writes: objects, arrays, strings with
//! escapes, and unsigned integers. The parser reads both `--format json`
//! reports and `LINT_BASELINE.json`, which is what makes the round-trip
//! test in the tier-1 gate possible without pulling in serde.
//!
//! The baseline is a **ratchet**: the checked-in `LINT_BASELINE.json`
//! records the violation count the workspace is allowed to have (today:
//! zero everywhere), and `--baseline` fails when any rule's count *rises*.
//! Counts may only go down; lowering the baseline after a cleanup is a
//! one-line diff a reviewer can see.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{Severity, Violation};

pub const SCHEMA_VERSION: u64 = 1;

/// Escapes `s` as a JSON string body.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full machine-readable report: schema version, totals per
/// rule, and every violation with its severity.
pub fn report(violations: &[Violation]) -> String {
    let counts = Counts::from_violations(violations);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"total\": {},", counts.total);
    out.push_str("  \"by_rule\": {\n");
    let n = counts.by_rule.len();
    for (i, (rule, count)) in counts.by_rule.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let _ = writeln!(out, "    \"{}\": {}{}", escape(rule), count, comma);
    }
    out.push_str("  },\n");
    out.push_str("  \"violations\": [\n");
    let n = violations.len();
    for (i, v) in violations.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let sev = match v.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}",
            v.rule.name(),
            sev,
            escape(&v.path),
            v.line,
            escape(&v.message),
            comma
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Per-rule violation counts — the shape both the report's header and the
/// checked-in baseline share.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counts {
    pub total: u64,
    pub by_rule: BTreeMap<String, u64>,
}

impl Counts {
    pub fn from_violations(violations: &[Violation]) -> Counts {
        let mut by_rule: BTreeMap<String, u64> = BTreeMap::new();
        // Every known rule appears with an explicit zero so the baseline
        // file documents the full rule set, not just the failing part.
        for rule in crate::Rule::ALL {
            by_rule.insert(rule.name().to_string(), 0);
        }
        by_rule.insert(crate::Rule::BadSuppression.name().to_string(), 0);
        for v in violations {
            *by_rule.entry(v.rule.name().to_string()).or_insert(0) += 1;
        }
        Counts { total: violations.len() as u64, by_rule }
    }

    /// Renders the baseline file format (a report without the violation
    /// list — the counts ARE the contract).
    pub fn to_baseline_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"total\": {},", self.total);
        out.push_str("  \"by_rule\": {\n");
        let n = self.by_rule.len();
        for (i, (rule, count)) in self.by_rule.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(out, "    \"{}\": {}{}", escape(rule), count, comma);
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses `total` / `by_rule` from baseline OR report JSON.
    pub fn parse(text: &str) -> Result<Counts, String> {
        let value = Parser { chars: text.chars().collect(), i: 0 }.parse()?;
        let Value::Object(map) = value else {
            return Err("baseline: top level must be an object".to_string());
        };
        let total = match map.iter().find(|(k, _)| k == "total") {
            Some((_, Value::Num(n))) => *n,
            _ => return Err("baseline: missing numeric \"total\"".to_string()),
        };
        let mut by_rule = BTreeMap::new();
        if let Some((_, Value::Object(rules))) = map.iter().find(|(k, _)| k == "by_rule") {
            for (rule, count) in rules {
                let Value::Num(n) = count else {
                    return Err(format!("baseline: by_rule[{rule:?}] must be a number"));
                };
                by_rule.insert(rule.clone(), *n);
            }
        }
        Ok(Counts { total, by_rule })
    }

    /// The ratchet: every count in `self` (the fresh run) must be ≤ the
    /// baseline's. Rules absent from the baseline are held to zero, so a
    /// newly added rule cannot smuggle in violations.
    pub fn ratchet_against(&self, baseline: &Counts) -> Result<(), String> {
        let mut failures = Vec::new();
        if self.total > baseline.total {
            failures.push(format!(
                "total rose from {} to {} — the baseline only ratchets down",
                baseline.total, self.total
            ));
        }
        for (rule, &count) in &self.by_rule {
            let allowed = baseline.by_rule.get(rule).copied().unwrap_or(0);
            if count > allowed {
                failures.push(format!("{rule}: {count} violation(s), baseline allows {allowed}"));
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures.join("\n"))
        }
    }
}

/// The subset of JSON values the tooling emits.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Object(Vec<(String, Value)>),
    Array(Vec<Value>),
    Str(String),
    Num(u64),
    Bool(bool),
    Null,
}

struct Parser {
    chars: Vec<char>,
    i: usize,
}

impl Parser {
    fn parse(mut self) -> Result<Value, String> {
        let v = self.value()?;
        self.ws();
        if self.i < self.chars.len() {
            return Err(format!("trailing content at offset {}", self.i));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while self.i < self.chars.len() && self.chars[self.i].is_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.ws();
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {c:?} at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some(c) if c.is_ascii_digit() => self.number(),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            other => Err(format!("unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for c in word.chars() {
            if self.peek() != Some(c) {
                return Err(format!("bad literal at offset {}", self.i));
            }
            self.i += 1;
        }
        Ok(v)
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut entries = Vec::new();
        self.ws();
        if self.peek() == Some('}') {
            self.i += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.expect(':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some('}') => {
                    self.i += 1;
                    return Ok(Value::Object(entries));
                }
                other => return Err(format!("expected , or }} got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some(']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some('"') {
            return Err(format!("expected string at offset {}", self.i));
        }
        self.i += 1;
        let mut out = String::new();
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'u' => {
                            let hex: String = self.chars.iter().skip(self.i).take(4).collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        c => out.push(c),
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        text.parse::<u64>().map(Value::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;

    fn v(rule: Rule, line: usize) -> Violation {
        Violation::new(rule, "crates/x/src/lib.rs", line, "msg with \"quotes\"".to_string())
    }

    #[test]
    fn report_round_trips_through_the_parser() {
        let vs = [v(Rule::EntropyTaint, 3), v(Rule::EntropyTaint, 9), v(Rule::ErrorFlow, 1)];
        let text = report(&vs);
        let counts = Counts::parse(&text).unwrap();
        assert_eq!(counts.total, 3);
        assert_eq!(counts.by_rule["entropy-taint"], 2);
        assert_eq!(counts.by_rule["error-flow"], 1);
        assert_eq!(counts.by_rule["par-closure-race"], 0);
        assert_eq!(counts, Counts::from_violations(&vs));
    }

    #[test]
    fn baseline_json_round_trips() {
        let counts = Counts::from_violations(&[v(Rule::NoPanicInLib, 2)]);
        let parsed = Counts::parse(&counts.to_baseline_json()).unwrap();
        assert_eq!(parsed, counts);
    }

    #[test]
    fn ratchet_only_goes_down() {
        let base = Counts::from_violations(&[v(Rule::ErrorFlow, 1)]);
        let clean = Counts::from_violations(&[]);
        let worse = Counts::from_violations(&[v(Rule::ErrorFlow, 1), v(Rule::ErrorFlow, 2)]);
        assert!(clean.ratchet_against(&base).is_ok());
        assert!(base.ratchet_against(&base).is_ok());
        assert!(worse.ratchet_against(&base).is_err());
        // A rule missing from the baseline is held to zero.
        let unseen = Counts::from_violations(&[v(Rule::EntropyTaint, 1)]);
        let empty = Counts { total: 10, by_rule: BTreeMap::new() };
        assert!(unseen.ratchet_against(&empty).is_err());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Counts::parse("").is_err());
        assert!(Counts::parse("[1, 2]").is_err());
        assert!(Counts::parse("{\"total\": \"three\"}").is_err());
        assert!(Counts::parse("{\"total\": 1} trailing").is_err());
    }
}
