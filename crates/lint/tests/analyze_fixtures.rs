//! Fixture-tree driver for the `sjc-analyze` passes: each pass has a firing
//! (`*_bad`) and a clean (`*_ok`) miniature workspace under
//! `tests/fixtures/`. The trees are scanned, never compiled — `collect_rs`
//! skips directories named `fixtures`, so the outer workspace gate does not
//! lint the deliberately-bad code here.

use std::path::PathBuf;

use sjc_lint::{analyze_workspace, Rule};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

#[test]
fn each_pass_has_a_firing_and_a_clean_fixture() {
    let table: &[(&str, Option<Rule>)] = &[
        ("entropy_bad", Some(Rule::EntropyTaint)),
        ("entropy_ok", None),
        ("par_closure_bad", Some(Rule::ParClosureRace)),
        ("par_closure_ok", None),
        ("error_flow_bad", Some(Rule::ErrorFlow)),
        ("error_flow_ok", None),
        ("hot_alloc_bad", Some(Rule::HotAlloc)),
        ("hot_alloc_ok", None),
        ("loop_invariant_bad", Some(Rule::LoopInvariantCall)),
        ("loop_invariant_ok", None),
        ("unit_flow_bad", Some(Rule::UnitFlow)),
        ("unit_flow_ok", None),
        ("panic_path_bad", Some(Rule::PanicPath)),
        ("panic_path_ok", None),
        ("interproc_unit_flow_bad", Some(Rule::InterprocUnitFlow)),
        ("interproc_unit_flow_ok", None),
        ("cache_purity_bad", Some(Rule::CachePurity)),
        ("cache_purity_ok", None),
        ("scoped_spawn_bad", Some(Rule::ScopedSpawnInHotPath)),
        ("scoped_spawn_ok", None),
        ("stale_suppression_bad", Some(Rule::StaleSuppression)),
        ("stale_suppression_ok", None),
    ];
    for (name, expected) in table {
        let vs = analyze_workspace(&fixture(name))
            .unwrap_or_else(|e| panic!("{name}: scan failed: {e}"));
        match expected {
            Some(rule) => {
                assert!(
                    vs.iter().any(|v| v.rule == *rule),
                    "{name}: expected a {} finding, got {vs:?}",
                    rule.name()
                );
                assert!(
                    vs.iter().all(|v| v.rule == *rule),
                    "{name}: unexpected extra rules in {vs:?}"
                );
            }
            None => assert!(vs.is_empty(), "{name}: expected clean, got {vs:?}"),
        }
    }
}

#[test]
fn hot_alloc_bad_names_the_site_and_the_loop() {
    let vs = analyze_workspace(&fixture("hot_alloc_bad")).unwrap();
    assert!(
        vs.iter().any(|v| v.path == "crates/core/src/join.rs"
            && v.message.contains(".to_string()")
            && v.message.contains("hot loop")),
        "{vs:?}"
    );
}

#[test]
fn loop_invariant_findings_are_warnings_not_errors() {
    let vs = analyze_workspace(&fixture("loop_invariant_bad")).unwrap();
    assert!(
        vs.iter()
            .all(|v| v.rule == Rule::LoopInvariantCall && v.severity == sjc_lint::Severity::Warning),
        "{vs:?}"
    );
    assert!(vs.iter().any(|v| v.message.contains("`weight(")), "{vs:?}");
}

#[test]
fn unit_flow_bad_reports_mixing_flow_and_sink() {
    let vs = analyze_workspace(&fixture("unit_flow_bad")).unwrap();
    // Direct mixing, mixing through a `let` chain, and the unconverted sink.
    assert!(vs.iter().any(|v| v.message.contains("shuffle_bytes")), "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("`moved`")), "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("sim_ns")), "{vs:?}");
}

#[test]
fn entropy_bad_reports_both_halves_of_the_pass() {
    let vs = analyze_workspace(&fixture("entropy_bad")).unwrap();
    // Reachability: `plan` reaches thread_rng through sjc_data::jitter.
    assert!(
        vs.iter().any(|v| v.path == "crates/cluster/src/sched.rs" && v.message.contains("jitter")),
        "{vs:?}"
    );
    // Data flow: the Instant::now-derived binding flows into sim_ns.
    assert!(
        vs.iter().any(|v| v.path == "crates/cluster/src/sched.rs" && v.message.contains("sim_ns")),
        "{vs:?}"
    );
    // The source in crates/data is not itself a sim-crate violation — the
    // bench-isolation line rule owns that site.
    assert!(!vs.iter().any(|v| v.path.starts_with("crates/data")), "{vs:?}");
}

#[test]
fn panic_path_bad_reports_the_full_chain_as_related_locations() {
    let vs = analyze_workspace(&fixture("panic_path_bad")).unwrap();
    // The violation anchors at the pub API in the sim crate, not at the
    // panic site in sjc_par (which no-panic-in-lib does not cover).
    let v = vs.iter().find(|v| v.path == "crates/core/src/join.rs").unwrap();
    assert!(v.message.contains("run_join") && v.message.contains("par_map_budget"), "{v:?}");
    assert!(v.message.contains(".unwrap"), "{v:?}");
    // One related location per hop: the call into sjc_par, then the site.
    assert_eq!(v.related.len(), 2, "{v:?}");
    assert_eq!(v.related[1].path, "crates/par/src/lib.rs");
    assert_eq!(v.related[1].line, 4, "{v:?}");
}

#[test]
fn panic_path_ok_consumed_audit_survives_stale_suppression() {
    // The audited allow(panic-path) in the ok tree matches no surviving
    // finding; only the consumed-audit carve-out keeps it from being
    // reported stale. An empty scan proves both halves at once.
    let vs = analyze_workspace(&fixture("panic_path_ok")).unwrap();
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn interproc_unit_flow_bad_fires_all_three_shapes() {
    let vs = analyze_workspace(&fixture("interproc_unit_flow_bad")).unwrap();
    // Return mixed with a differently-united operand…
    assert!(vs.iter().any(|v| v.message.contains("`moved(…)` returns bytes")), "{vs:?}");
    // …return flowing into an ns sink unconverted…
    assert!(vs.iter().any(|v| v.message.contains("sim_ns")), "{vs:?}");
    // …and an argument/parameter unit mismatch.
    assert!(vs.iter().any(|v| v.message.contains("parameter `cost_ns`")), "{vs:?}");
    // Every finding points back at the summarized declaration.
    assert!(vs.iter().all(|v| !v.related.is_empty()), "{vs:?}");
}

#[test]
fn cache_purity_bad_blames_the_directly_impure_fn_with_the_seam_chain() {
    let vs = analyze_workspace(&fixture("cache_purity_bad")).unwrap();
    assert_eq!(vs.len(), 1, "{vs:?}");
    let v = &vs[0];
    // `stamp` is directly impure; `build` (impure only via `stamp`) is not
    // cascaded into a second finding.
    assert_eq!(v.path, "crates/data/src/catalog.rs");
    assert!(v.message.contains("`stamp`") && v.message.contains("generate_cached"), "{v:?}");
    // Chain: seam calls build, build calls stamp, then the mutation site.
    assert_eq!(v.related.len(), 3, "{v:?}");
    assert!(v.related[2].note.contains("fetch_add"), "{v:?}");
}

#[test]
fn scoped_spawn_bad_flags_both_the_scope_and_the_spawn() {
    let vs = analyze_workspace(&fixture("scoped_spawn_bad")).unwrap();
    assert!(vs.iter().any(|v| v.message.contains("thread::scope")), "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("thread::spawn")), "{vs:?}");
    assert!(
        vs.iter().all(|v| v.severity == sjc_lint::Severity::Error),
        "scoped-spawn findings are errors: {vs:?}"
    );
}

#[test]
fn stale_suppression_findings_are_warnings_that_name_the_dead_rule() {
    let vs = analyze_workspace(&fixture("stale_suppression_bad")).unwrap();
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].severity, sjc_lint::Severity::Warning, "{vs:?}");
    assert!(vs[0].message.contains("allow(no-panic-in-lib)"), "{vs:?}");
    assert_eq!(vs[0].line, 6, "{vs:?}");
}

#[test]
fn error_flow_bad_names_the_phantom_variant_at_its_declaration() {
    let vs = analyze_workspace(&fixture("error_flow_bad")).unwrap();
    assert!(
        vs.iter().any(|v| v.path == "crates/cluster/src/error.rs" && v.message.contains("Phantom")),
        "{vs:?}"
    );
    // The recovery-ledger vocabulary is audited with the same rule.
    assert!(
        vs.iter().any(|v| v.path == "crates/cluster/src/metrics.rs" && v.message.contains("Ghost")),
        "{vs:?}"
    );
    // Both discard shapes are reported in lib.rs.
    let discards: Vec<_> = vs.iter().filter(|v| v.path == "crates/cluster/src/lib.rs").collect();
    assert_eq!(discards.len(), 2, "{vs:?}");
}
