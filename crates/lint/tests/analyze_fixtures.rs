//! Fixture-tree driver for the `sjc-analyze` passes: each pass has a firing
//! (`*_bad`) and a clean (`*_ok`) miniature workspace under
//! `tests/fixtures/`. The trees are scanned, never compiled — `collect_rs`
//! skips directories named `fixtures`, so the outer workspace gate does not
//! lint the deliberately-bad code here.

use std::path::PathBuf;

use sjc_lint::{analyze_workspace, Rule};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

#[test]
fn each_pass_has_a_firing_and_a_clean_fixture() {
    let table: &[(&str, Option<Rule>)] = &[
        ("entropy_bad", Some(Rule::EntropyTaint)),
        ("entropy_ok", None),
        ("par_closure_bad", Some(Rule::ParClosureRace)),
        ("par_closure_ok", None),
        ("error_flow_bad", Some(Rule::ErrorFlow)),
        ("error_flow_ok", None),
        ("hot_alloc_bad", Some(Rule::HotAlloc)),
        ("hot_alloc_ok", None),
        ("loop_invariant_bad", Some(Rule::LoopInvariantCall)),
        ("loop_invariant_ok", None),
        ("unit_flow_bad", Some(Rule::UnitFlow)),
        ("unit_flow_ok", None),
    ];
    for (name, expected) in table {
        let vs = analyze_workspace(&fixture(name))
            .unwrap_or_else(|e| panic!("{name}: scan failed: {e}"));
        match expected {
            Some(rule) => {
                assert!(
                    vs.iter().any(|v| v.rule == *rule),
                    "{name}: expected a {} finding, got {vs:?}",
                    rule.name()
                );
                assert!(
                    vs.iter().all(|v| v.rule == *rule),
                    "{name}: unexpected extra rules in {vs:?}"
                );
            }
            None => assert!(vs.is_empty(), "{name}: expected clean, got {vs:?}"),
        }
    }
}

#[test]
fn hot_alloc_bad_names_the_site_and_the_loop() {
    let vs = analyze_workspace(&fixture("hot_alloc_bad")).unwrap();
    assert!(
        vs.iter().any(|v| v.path == "crates/core/src/join.rs"
            && v.message.contains(".to_string()")
            && v.message.contains("hot loop")),
        "{vs:?}"
    );
}

#[test]
fn loop_invariant_findings_are_warnings_not_errors() {
    let vs = analyze_workspace(&fixture("loop_invariant_bad")).unwrap();
    assert!(
        vs.iter()
            .all(|v| v.rule == Rule::LoopInvariantCall && v.severity == sjc_lint::Severity::Warning),
        "{vs:?}"
    );
    assert!(vs.iter().any(|v| v.message.contains("`weight(")), "{vs:?}");
}

#[test]
fn unit_flow_bad_reports_mixing_flow_and_sink() {
    let vs = analyze_workspace(&fixture("unit_flow_bad")).unwrap();
    // Direct mixing, mixing through a `let` chain, and the unconverted sink.
    assert!(vs.iter().any(|v| v.message.contains("shuffle_bytes")), "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("`moved`")), "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("sim_ns")), "{vs:?}");
}

#[test]
fn entropy_bad_reports_both_halves_of_the_pass() {
    let vs = analyze_workspace(&fixture("entropy_bad")).unwrap();
    // Reachability: `plan` reaches thread_rng through sjc_data::jitter.
    assert!(
        vs.iter().any(|v| v.path == "crates/cluster/src/sched.rs" && v.message.contains("jitter")),
        "{vs:?}"
    );
    // Data flow: the Instant::now-derived binding flows into sim_ns.
    assert!(
        vs.iter().any(|v| v.path == "crates/cluster/src/sched.rs" && v.message.contains("sim_ns")),
        "{vs:?}"
    );
    // The source in crates/data is not itself a sim-crate violation — the
    // bench-isolation line rule owns that site.
    assert!(!vs.iter().any(|v| v.path.starts_with("crates/data")), "{vs:?}");
}

#[test]
fn error_flow_bad_names_the_phantom_variant_at_its_declaration() {
    let vs = analyze_workspace(&fixture("error_flow_bad")).unwrap();
    assert!(
        vs.iter().any(|v| v.path == "crates/cluster/src/error.rs" && v.message.contains("Phantom")),
        "{vs:?}"
    );
    // The recovery-ledger vocabulary is audited with the same rule.
    assert!(
        vs.iter().any(|v| v.path == "crates/cluster/src/metrics.rs" && v.message.contains("Ghost")),
        "{vs:?}"
    );
    // Both discard shapes are reported in lib.rs.
    let discards: Vec<_> = vs.iter().filter(|v| v.path == "crates/cluster/src/lib.rs").collect();
    assert_eq!(discards.len(), 2, "{vs:?}");
}
