//! Fixture: a live waiver — the indexing it audits is still there, so the
//! allow suppresses a real pre-suppression finding (and the summary layer
//! consumes it as an audited panic site).

pub fn first(xs: &[u64]) -> u64 {
    // sjc-lint: allow(no-panic-in-lib) — callers split non-empty partitions, so `xs` has an element
    xs[0]
}
