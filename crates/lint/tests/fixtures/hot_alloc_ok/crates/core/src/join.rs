//! Fixture: the sanctioned idioms — a pre-sized buffer filled in the hot
//! loop, and a per-iteration allocation in a function the hot set cannot
//! reach (the reachability gate, not a suppression, keeps it clean).

pub fn drive(parts: &[Vec<u64>]) -> Vec<u64> {
    sjc_par::par_map(parts, |p| kernel(p))
}

fn kernel(p: &[u64]) -> u64 {
    let mut buf = Vec::with_capacity(p.len());
    for x in p.iter() {
        buf.push(x + 1);
    }
    buf.len() as u64
}

fn cold_report(p: &[u64]) -> Vec<String> {
    let mut rows = Vec::with_capacity(p.len());
    for x in p.iter() {
        rows.push(x.to_string());
    }
    rows
}
