//! Fixture: only `Live` is ever constructed, and two Results are thrown
//! away without a reason.

pub fn fail() -> Result<(), SimError> {
    Err(SimError::Live("boom".into()))
}

pub fn ignore(r: Result<(), SimError>) {
    let _ = r;
}

pub fn drop_result() {
    fail().ok();
}
