//! Fixture: a failure vocabulary with a phantom entry.

pub enum SimError {
    Live(String),
    Phantom(u64),
}

impl SimError {
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Live(_) => "live",
            SimError::Phantom(_) => "phantom",
        }
    }
}
