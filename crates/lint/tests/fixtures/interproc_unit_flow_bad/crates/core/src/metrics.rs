//! Fixture: units crossing call boundaries wrongly — all three shapes the
//! interprocedural pass owns. None of the callee *names* carry a unit, so
//! the intra-procedural pass sees nothing; only the summarized signatures
//! (return units inferred through the bodies, parameter units from the
//! declarations) expose the mixing.

pub fn mixed_total(task_ns: u64, n: u64) -> u64 {
    task_ns + moved(n)
}

pub fn unconverted_sink(row: &mut Row, n: u64) {
    row.sim_ns = step(n);
}

pub fn wrong_argument(read_bytes: u64) -> u64 {
    scale(read_bytes)
}

fn moved(n: u64) -> u64 {
    let out_bytes = n;
    out_bytes
}

fn step(n: u64) -> u64 {
    let got_bytes = n;
    got_bytes
}

fn scale(cost_ns: u64) -> u64 {
    cost_ns
}
