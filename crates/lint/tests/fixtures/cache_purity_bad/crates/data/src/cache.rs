//! Fixture: a memoized seam whose value computation is not a pure function
//! of the key — the impurity sits one crate-internal hop away, in a file
//! the seam-file exemption does not cover.

pub fn generate_cached(k: u64) -> u64 {
    build(k)
}
