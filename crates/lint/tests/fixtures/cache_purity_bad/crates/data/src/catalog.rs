//! Fixture: the reached computation mutates a process-wide counter, so a
//! warm run and a cold run of the cache diverge.

pub fn build(k: u64) -> u64 {
    stamp(k)
}

fn stamp(k: u64) -> u64 {
    k ^ COUNTER.fetch_add(1, Ordering::Relaxed)
}
