//! Fixture: both variants constructed; every discard is either the
//! infallible in-memory `writeln!` or carries a reasoned suppression.

pub fn fail(n: u64) -> Result<(), SimError> {
    if n == 0 {
        return Err(SimError::Phantom(n));
    }
    Err(SimError::Live("boom".into()))
}

pub fn render(xs: &[u64]) -> String {
    let mut out = String::new();
    for x in xs.iter() {
        let _ = writeln!(out, "{x}");
    }
    out
}

pub fn best_effort() {
    // sjc-lint: allow(error-flow) — probe write; failure leaves the cache cold, which is the designed fallback
    warm_cache().ok();
}
