//! Fixture: every recovery kind is constructed and rendered.

pub enum RecoveryKind {
    Retry { attempt: u32 },
    Ghost { node: u32 },
}

pub fn retry(attempt: u32) -> RecoveryKind {
    RecoveryKind::Retry { attempt }
}

pub fn ghost(node: u32) -> RecoveryKind {
    RecoveryKind::Ghost { node }
}

pub fn label(k: &RecoveryKind) -> &'static str {
    match k {
        RecoveryKind::Retry { .. } => "retry",
        RecoveryKind::Ghost { .. } => "ghost",
    }
}
