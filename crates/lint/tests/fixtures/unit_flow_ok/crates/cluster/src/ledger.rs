//! Fixture: unit-correct arithmetic — same-unit sums, and bytes converted
//! to nanoseconds through an explicit rate before reaching the sink.

pub fn same_unit_total(map_ns: u64, reduce_ns: u64) -> u64 {
    map_ns + reduce_ns
}

pub fn converted(read_bytes: u64, ns_per_byte: u64) -> u64 {
    let cost_ns = read_bytes * ns_per_byte;
    cost_ns
}

pub fn converted_sink(row: &mut Row, read_bytes: u64, ns_per_byte: u64) {
    row.sim_ns = read_bytes * ns_per_byte;
}
