//! Fixture: hot-path dispatch through the sjc_par pool entry points, and a
//! test spawning a thread to exercise blocking behavior — both clean.

pub fn sweep(parts: &[Vec<u64>]) -> Vec<u64> {
    sjc_par::par_map(parts, |p| p.len() as u64)
}

#[cfg(test)]
mod tests {
    fn drives_blocking() {
        std::thread::spawn(|| super::sweep(&[]));
    }
}
