//! Fixture: the pool crate is the sanctioned owner of OS threads — its
//! scoped spawns are the implementation the rest of the workspace is
//! required to go through.

pub fn run(work: &(dyn Fn() + Sync)) {
    std::thread::scope(|s| {
        s.spawn(|| work());
    });
}
