//! Fixture: the same two-hop chain as `panic_path_bad`, but the panic site
//! carries an audited `allow(panic-path)` — the summary layer trusts it, so
//! no chain starts there, and the consumed audit keeps the allow comment
//! alive under the stale-suppression pass.

use sjc_par::par_map_budget;

pub fn run_join(parts: &[u64]) -> u64 {
    par_map_budget(parts)
}
