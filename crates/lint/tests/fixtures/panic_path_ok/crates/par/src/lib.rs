//! Fixture: runtime helper whose unwrap is an audited invariant.

pub fn par_map_budget(parts: &[u64]) -> u64 {
    // sjc-lint: allow(panic-path) — the driver never dispatches zero chunks, so `parts` is non-empty
    let first = parts.iter().next().unwrap();
    *first
}
