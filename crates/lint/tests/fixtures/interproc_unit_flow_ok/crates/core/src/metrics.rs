//! Fixture: the clean counterparts — a converting rate between the call
//! and the nanosecond sink, agreeing units on both sides of a `+`, and an
//! argument already in the parameter's unit.

pub fn converted_sink(row: &mut Row, n: u64, ns_per_byte: u64) {
    row.sim_ns = step(n) * ns_per_byte;
}

pub fn agreeing_total(task_ns: u64, n: u64) -> u64 {
    task_ns + delay(n)
}

pub fn right_argument(cost_ns: u64) -> u64 {
    scale(cost_ns)
}

fn step(n: u64) -> u64 {
    let got_bytes = n;
    got_bytes
}

fn delay(n: u64) -> u64 {
    let more_ns = n;
    more_ns
}

fn scale(cost_ns: u64) -> u64 {
    cost_ns
}
