//! Fixture: a hot loop recomputing a call whose arguments never change —
//! one hash per record for a value the loop cannot alter.

pub fn drive(parts: &[Vec<u64>]) -> Vec<u64> {
    sjc_par::par_map(parts, |p| kernel(p, 3))
}

fn kernel(p: &[u64], k: u64) -> u64 {
    let mut acc = 0u64;
    for x in p.iter() {
        let w = weight(k);
        acc += w + x;
    }
    acc
}

fn weight(k: u64) -> u64 {
    k * 2
}
