//! Fixture: a hot-path kernel spawning its own scoped threads instead of
//! dispatching through the persistent pool in sjc_par — the
//! spawn-per-call overhead that made every workload scale negatively.

pub fn sweep(parts: &[Vec<u64>]) -> u64 {
    let mut total = 0u64;
    std::thread::scope(|s| {
        for p in parts {
            s.spawn(|| chunk(p));
        }
    });
    total += parts.len() as u64;
    total
}

fn chunk(p: &[u64]) -> u64 {
    p.len() as u64
}

pub fn prefetch() -> bool {
    let warmup = std::thread::spawn(warm);
    warmup.join().is_ok()
}

fn warm() {}
