//! Fixture: the bench harness may observe the host clock — as long as the
//! observation never flows into a simulated number.

pub fn snap(row: &mut Row, model_ns: u64) {
    let t0 = Instant::now();
    row.wall_ms = elapsed_ms(t0);
    row.sim_ns = model_ns;
}
