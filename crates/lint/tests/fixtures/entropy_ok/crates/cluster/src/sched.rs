//! Fixture: simulation code that derives everything from the seed.

use sjc_data::jitter;

pub fn plan(tasks: u64, seed: u64) -> u64 {
    tasks + jitter(seed)
}
