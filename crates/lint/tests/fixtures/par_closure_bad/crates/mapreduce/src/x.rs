//! Fixture: a par closure mutating captured state — exactly the data race
//! the 1-vs-8-thread bit-identity tests exist to rule out.

pub fn count(parts: &[Vec<u64>]) -> Vec<u64> {
    let mut totals = Vec::new();
    sjc_par::par_map(parts, |p| {
        totals.push(p.len() as u64);
        p.len() as u64
    })
}
