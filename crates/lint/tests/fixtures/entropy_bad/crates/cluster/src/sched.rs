//! Fixture: simulation code that reaches entropy transitively and leaks the
//! wall clock into simulated output.

use sjc_data::jitter;

pub fn plan(tasks: u64) -> u64 {
    tasks + jitter()
}

pub fn stamp(row: &mut Row) {
    let t0 = Instant::now();
    row.sim_ns = t0;
}
