//! Fixture: an entropy source hiding in a non-simulation crate.

pub fn jitter() -> u64 {
    let r = thread_rng();
    r
}
