//! Fixture: the race-free counterpart — every binding the closure mutates is
//! its own.

pub fn count(parts: &[Vec<u64>]) -> Vec<u64> {
    sjc_par::par_map(parts, |p| {
        let mut acc = 0u64;
        for x in p.iter() {
            acc += *x;
        }
        acc
    })
}
