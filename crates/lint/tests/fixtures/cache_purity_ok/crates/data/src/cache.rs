//! Fixture: the seam's own bookkeeping (hit counters) is exempt, and the
//! reached computation is a pure function of the key.

pub fn generate_cached(k: u64) -> u64 {
    HITS.fetch_add(1, Ordering::Relaxed);
    build(k)
}
