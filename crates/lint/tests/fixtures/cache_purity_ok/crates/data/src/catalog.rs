//! Fixture: pure value computation — the cache key fully determines it.

pub fn build(k: u64) -> u64 {
    k.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}
