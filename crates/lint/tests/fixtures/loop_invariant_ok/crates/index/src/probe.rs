//! Fixture: the hoisted form of `loop_invariant_bad` — the invariant call
//! is computed once above the loop, and the loop-fed call is left alone.

pub fn drive(parts: &[Vec<u64>]) -> Vec<u64> {
    sjc_par::par_map(parts, |p| kernel(p, 3))
}

fn kernel(p: &[u64], k: u64) -> u64 {
    let w = weight(k);
    let mut acc = 0u64;
    for x in p.iter() {
        acc += w + weight(*x);
    }
    acc
}

fn weight(k: u64) -> u64 {
    k * 2
}
