//! Fixture: unit-mixing arithmetic — nanoseconds and bytes combined with
//! `+`, directly and through a `let` chain, plus bytes reaching an `_ns`
//! sink without a converting rate.

pub fn mixed_total(task_ns: u64, shuffle_bytes: u64) -> u64 {
    task_ns + shuffle_bytes
}

pub fn mixed_through_flow(task_ns: u64, read_bytes: u64) -> u64 {
    let moved = read_bytes;
    task_ns + moved
}

pub fn unconverted_sink(row: &mut Row, read_bytes: u64) {
    row.sim_ns = read_bytes;
}
