//! Fixture: a par-map kernel allocating per record inside its hot loop —
//! the per-tuple overhead the hot-alloc pass exists to flag.

pub fn drive(parts: &[Vec<u64>]) -> Vec<u64> {
    sjc_par::par_map(parts, |p| kernel(p))
}

fn kernel(p: &[u64]) -> u64 {
    let mut acc = 0u64;
    for x in p.iter() {
        let s = x.to_string();
        acc += s.len() as u64;
    }
    acc
}
