//! Fixture: an audited waiver whose finding is gone — the indexing it once
//! audited was rewritten into saturating arithmetic, so the comment now
//! covers nothing and would silently waive a future regression.

pub fn area(w: u64, h: u64) -> u64 {
    // sjc-lint: allow(no-panic-in-lib) — index bounded by the caller's loop
    w.saturating_mul(h)
}
