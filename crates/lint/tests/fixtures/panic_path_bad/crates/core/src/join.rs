//! Fixture: a `pub` simulation API that reaches a panic site two hops away
//! — the site lives in `sjc_par`, a crate the `no-panic-in-lib` line rule
//! does not cover, so only the interprocedural pass can see the chain.

use sjc_par::par_map_budget;

pub fn run_join(parts: &[u64]) -> u64 {
    par_map_budget(parts)
}
