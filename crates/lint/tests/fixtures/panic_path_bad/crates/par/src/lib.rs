//! Fixture: runtime helper with an unaudited unwrap.

pub fn par_map_budget(parts: &[u64]) -> u64 {
    let first = parts.iter().next().unwrap();
    *first
}
