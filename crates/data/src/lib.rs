//! # sjc-data — synthetic geospatial datasets
//!
//! The paper evaluates on four public datasets (NYC taxi pickups, NYC census
//! blocks, TIGER `edges` and `linearwater`) totalling ~39 GB — unavailable
//! here and unnecessary for reproducing the experiments' *shape*. This crate
//! generates seeded synthetic datasets with matching spatial character:
//!
//! * [`taxi`] — clustered pickup points (hotspot mixture: a dense
//!   Manhattan-like core plus uniform background);
//! * [`census`] — a polygonal tessellation of the urban extent with
//!   density-adaptive block sizes (small blocks downtown);
//! * [`tiger`] — road-segment polylines (`edges`) and meandering water
//!   polylines (`linearwater`).
//!
//! **Scaling model.** A dataset generated at scale `s` keeps *densities*
//! constant and shrinks the *domain* (area × `s`), so per-record join
//! behaviour — selectivity, candidate pairs per record, partition occupancy
//! distribution — matches the full dataset, and all volumes extrapolate
//! linearly by `1/s`. The [`catalog`] carries the paper's Table-1 full-scale
//! record counts and byte sizes; [`catalog::ScaledDataset`] pairs generated
//! geometry with its extrapolation multiplier for the cost model.

pub mod cache;
pub mod catalog;
pub mod census;
pub mod io;
pub mod profile;
pub mod rng;
pub mod taxi;
pub mod tiger;
pub mod tsv;

pub use cache::generate_cached;
pub use catalog::{DatasetId, DatasetSpec, ScaledDataset};
pub use profile::DatasetProfile;
