//! Dataset catalog: the paper's Table 1, plus the scaling machinery.

use crate::rng::StdRng;
use sjc_geom::{Geometry, Mbr};

const MIB: u64 = 1 << 20;
const GIB: u64 = 1 << 30;

/// The seven datasets of the paper's experiments (Table 1 plus `taxi1m`,
/// which Table 1 omits but §III.A defines as one month of the taxi data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// NYC taxi pickup locations, 2013 (points).
    Taxi,
    /// NYC 2010 census blocks (polygons).
    Nycb,
    /// TIGER linear water features (polylines).
    Linearwater,
    /// TIGER road edges (polylines).
    Edges,
    /// 10% sample of `linearwater`.
    Linearwater01,
    /// 10% sample of `edges`.
    Edges01,
    /// One month of `taxi` (~1/12 of the records).
    Taxi1m,
}

impl DatasetId {
    pub fn all() -> [DatasetId; 7] {
        [
            DatasetId::Taxi,
            DatasetId::Nycb,
            DatasetId::Linearwater,
            DatasetId::Edges,
            DatasetId::Linearwater01,
            DatasetId::Edges01,
            DatasetId::Taxi1m,
        ]
    }

    /// Table 1 rows, in the paper's order.
    pub fn table1() -> [DatasetId; 6] {
        [
            DatasetId::Taxi,
            DatasetId::Nycb,
            DatasetId::Linearwater,
            DatasetId::Edges,
            DatasetId::Linearwater01,
            DatasetId::Edges01,
        ]
    }

    pub fn spec(self) -> DatasetSpec {
        match self {
            DatasetId::Taxi => DatasetSpec {
                id: self,
                name: "taxi",
                kind: GeometryKind::Point,
                full_records: 169_720_892,
                full_bytes: (6.9 * GIB as f64) as u64,
            },
            DatasetId::Nycb => DatasetSpec {
                id: self,
                name: "nycb",
                kind: GeometryKind::Polygon,
                full_records: 38_839,
                full_bytes: 19 * MIB,
            },
            DatasetId::Linearwater => DatasetSpec {
                id: self,
                name: "linearwater",
                kind: GeometryKind::Polyline,
                full_records: 5_857_442,
                full_bytes: (8.4 * GIB as f64) as u64,
            },
            DatasetId::Edges => DatasetSpec {
                id: self,
                name: "edges",
                kind: GeometryKind::Polyline,
                full_records: 72_729_686,
                full_bytes: (23.8 * GIB as f64) as u64,
            },
            DatasetId::Linearwater01 => DatasetSpec {
                id: self,
                name: "linearwater0.1",
                kind: GeometryKind::Polyline,
                full_records: 585_809,
                full_bytes: 852 * MIB,
            },
            DatasetId::Edges01 => DatasetSpec {
                id: self,
                name: "edges0.1",
                kind: GeometryKind::Polyline,
                full_records: 7_271_983,
                full_bytes: (2.3 * GIB as f64) as u64,
            },
            DatasetId::Taxi1m => DatasetSpec {
                id: self,
                name: "taxi1m",
                // One month of 2013: full counts divided by 12.
                kind: GeometryKind::Point,
                full_records: 169_720_892 / 12,
                full_bytes: (6.9 * GIB as f64 / 12.0) as u64,
            },
        }
    }
}

/// Geometry family of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryKind {
    Point,
    Polyline,
    Polygon,
}

/// Full-scale metadata of one dataset (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    pub id: DatasetId,
    pub name: &'static str,
    pub kind: GeometryKind,
    pub full_records: u64,
    pub full_bytes: u64,
}

impl DatasetSpec {
    /// Average serialized bytes per record (from Table 1).
    pub fn bytes_per_record(&self) -> f64 {
        self.full_bytes as f64 / self.full_records as f64
    }
}

/// The NYC datasets (taxi/nycb) share one urban domain; the TIGER datasets
/// share another. The absolute units are arbitrary (think meters); what
/// matters is that joined datasets share the *same* domain so densities and
/// selectivities are meaningful.
fn full_domain(id: DatasetId) -> Mbr {
    match id {
        DatasetId::Taxi | DatasetId::Taxi1m | DatasetId::Nycb => {
            // ~800 km^2 urban area (NYC's five boroughs): 28.3 km square.
            Mbr::new(0.0, 0.0, 28_300.0, 28_300.0)
        }
        _ => {
            // A TIGER census-state-sized region. The exact size only sets
            // absolute feature density; intersections-per-record is what the
            // generators calibrate.
            Mbr::new(0.0, 0.0, 400_000.0, 400_000.0)
        }
    }
}

/// A generated dataset: geometry at generation scale plus the extrapolation
/// factor to full scale.
#[derive(Debug, Clone)]
pub struct ScaledDataset {
    pub spec: DatasetSpec,
    /// Generation scale `s` (domain area factor; record count factor).
    pub scale: f64,
    /// The (shrunken) domain the geometry lives in.
    pub domain: Mbr,
    pub geoms: Vec<Geometry>,
}

impl ScaledDataset {
    /// Generates dataset `id` at scale `s` with a deterministic seed.
    ///
    /// The domain side shrinks by `sqrt(s)` while record count shrinks by
    /// `s`, preserving density. Joined datasets must be generated at the
    /// same scale (the experiment layer enforces this).
    pub fn generate(id: DatasetId, scale: f64, seed: u64) -> ScaledDataset {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let spec = id.spec();
        let full = full_domain(id);
        let side_factor = scale.sqrt();
        let domain = Mbr::new(
            full.min_x,
            full.min_y,
            full.min_x + full.width() * side_factor,
            full.min_y + full.height() * side_factor,
        );
        let records = ((spec.full_records as f64 * scale).round() as usize).max(1);
        // Seed mixes the dataset id so joined datasets are independent.
        let mut rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let geoms = match id {
            DatasetId::Taxi | DatasetId::Taxi1m => crate::taxi::generate(&mut rng, domain, records),
            DatasetId::Nycb => crate::census::generate(&mut rng, domain, records),
            DatasetId::Edges | DatasetId::Edges01 => {
                crate::tiger::generate_edges(&mut rng, domain, records)
            }
            DatasetId::Linearwater | DatasetId::Linearwater01 => {
                crate::tiger::generate_linearwater(&mut rng, domain, records)
            }
        };
        ScaledDataset { spec, scale, domain, geoms }
    }

    /// Number of generated records.
    pub fn len(&self) -> usize {
        self.geoms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.geoms.is_empty()
    }

    /// Extrapolation multiplier from generated to full scale.
    pub fn multiplier(&self) -> f64 {
        self.spec.full_records as f64 / self.len() as f64
    }

    /// Serialized size of the *generated* slice, using the real dataset's
    /// bytes-per-record (Table 1) so I/O costs reflect the paper's data,
    /// which carries non-geometry attributes alongside WKT.
    pub fn sim_bytes(&self) -> u64 {
        (self.len() as f64 * self.spec.bytes_per_record()) as u64
    }

    /// Total geometry vertices in the generated slice (drives refinement
    /// and memory-footprint costs).
    pub fn total_vertices(&self) -> u64 {
        self.geoms.iter().map(|g| g.num_vertices() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let taxi = DatasetId::Taxi.spec();
        assert_eq!(taxi.full_records, 169_720_892);
        let edges = DatasetId::Edges.spec();
        assert_eq!(edges.full_records, 72_729_686);
        // Bytes-per-record sanity: taxi is tiny per record, linearwater large.
        assert!(taxi.bytes_per_record() < 60.0);
        assert!(DatasetId::Linearwater.spec().bytes_per_record() > 1000.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ScaledDataset::generate(DatasetId::Nycb, 0.02, 42);
        let b = ScaledDataset::generate(DatasetId::Nycb, 0.02, 42);
        assert_eq!(a.geoms, b.geoms);
        let c = ScaledDataset::generate(DatasetId::Nycb, 0.02, 43);
        assert_ne!(a.geoms, c.geoms, "different seed, different data");
    }

    #[test]
    fn scaling_preserves_density() {
        let small = ScaledDataset::generate(DatasetId::Taxi, 1e-5, 1);
        let large = ScaledDataset::generate(DatasetId::Taxi, 4e-5, 1);
        let d_small = small.len() as f64 / small.domain.area();
        let d_large = large.len() as f64 / large.domain.area();
        let ratio = d_small / d_large;
        assert!((0.8..1.25).contains(&ratio), "density ratio {ratio}");
    }

    #[test]
    fn geometry_stays_in_padded_domain() {
        for id in [DatasetId::Taxi, DatasetId::Nycb, DatasetId::Edges, DatasetId::Linearwater] {
            let ds = ScaledDataset::generate(id, 1e-4, 7);
            let padded = ds.domain.buffered(ds.domain.width() * 0.05);
            for g in &ds.geoms {
                assert!(padded.contains(&g.mbr()), "{id:?} geometry escapes domain");
            }
        }
    }

    #[test]
    fn multiplier_extrapolates_to_full_records() {
        let ds = ScaledDataset::generate(DatasetId::Edges01, 1e-3, 3);
        let full = ds.len() as f64 * ds.multiplier();
        let err = (full - ds.spec.full_records as f64).abs() / ds.spec.full_records as f64;
        assert!(err < 0.01, "extrapolation error {err}");
    }

    #[test]
    fn joined_datasets_share_domains() {
        let taxi = ScaledDataset::generate(DatasetId::Taxi, 1e-4, 9);
        let nycb = ScaledDataset::generate(DatasetId::Nycb, 1e-4, 9);
        assert_eq!(taxi.domain, nycb.domain);
        let edges = ScaledDataset::generate(DatasetId::Edges, 1e-4, 9);
        let water = ScaledDataset::generate(DatasetId::Linearwater, 1e-4, 9);
        assert_eq!(edges.domain, water.domain);
        assert_ne!(taxi.domain, edges.domain);
    }

    #[test]
    fn serialized_sizes_track_table1() {
        // The synthetic WKT must weigh roughly what the paper's Table 1
        // reports per record, or every byte-driven cost would be off.
        for (id, tolerance) in [
            (DatasetId::Taxi, 0.35),
            (DatasetId::Nycb, 0.25),
            (DatasetId::Edges, 0.25),
            (DatasetId::Linearwater, 0.25),
        ] {
            let ds = ScaledDataset::generate(id, 1e-3, 1);
            let wkt_bytes: u64 =
                ds.geoms.iter().take(500).map(|g| sjc_geom::wkt::to_wkt(g).len() as u64 + 8).sum();
            let measured = wkt_bytes as f64 / ds.geoms.len().min(500) as f64;
            let table1 = ds.spec.bytes_per_record();
            let err = (measured - table1).abs() / table1;
            assert!(
                err < tolerance,
                "{:?}: measured {measured:.0} B/rec vs Table 1 {table1:.0} (err {err:.2})",
                id
            );
        }
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn invalid_scale_rejected() {
        let _ = ScaledDataset::generate(DatasetId::Taxi, 0.0, 1);
    }
}
