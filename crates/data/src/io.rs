//! Dataset file I/O: TSV+WKT files on the real filesystem.
//!
//! The evaluated systems ingest tab-separated text with WKT geometry; these
//! helpers materialize synthetic datasets in that exact format (so external
//! tools can consume them) and load them back. Loading validates every line
//! — a malformed record aborts with its line number, as HDFS ingestion
//! tools do.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use sjc_geom::Geometry;

use crate::tsv::{parse_tsv_line, to_tsv_lines, TsvError};

/// Errors from dataset file operations.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    /// Parse failure with its 1-based line number.
    Parse {
        line: usize,
        source: TsvError,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes geometries as `id \t WKT` lines. Returns the byte count written.
pub fn write_tsv(path: &Path, geoms: &[Geometry]) -> Result<u64, IoError> {
    let mut out = BufWriter::new(File::create(path)?);
    let mut bytes = 0u64;
    for line in to_tsv_lines(geoms.iter().enumerate().map(|(i, g)| (i as u64, g))) {
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
        bytes += line.len() as u64 + 1;
    }
    out.flush()?;
    Ok(bytes)
}

/// Reads a TSV+WKT file back into `(id, geometry)` records.
pub fn read_tsv(path: &Path) -> Result<Vec<(u64, Geometry)>, IoError> {
    let reader = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let rec = parse_tsv_line(&line).map_err(|source| IoError::Parse { line: i + 1, source })?;
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetId, ScaledDataset};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sjc_io_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_a_generated_dataset() {
        let ds = ScaledDataset::generate(DatasetId::Linearwater01, 1e-3, 5);
        let path = tmp("roundtrip.tsv");
        let bytes = write_tsv(&path, &ds.geoms).unwrap();
        assert!(bytes > 0);
        let back = read_tsv(&path).unwrap();
        assert_eq!(back.len(), ds.len());
        for (i, (id, g)) in back.iter().enumerate() {
            assert_eq!(*id, i as u64);
            assert_eq!(g, &ds.geoms[i]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn written_bytes_match_file_size() {
        let ds = ScaledDataset::generate(DatasetId::Nycb, 1e-2, 5);
        let path = tmp("size.tsv");
        let bytes = write_tsv(&path, &ds.geoms).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_line_reports_its_number() {
        let path = tmp("bad.tsv");
        std::fs::write(&path, "0\tPOINT (1 2)\nnot a record\n").unwrap();
        match read_tsv(&path) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(read_tsv(Path::new("/definitely/not/here.tsv")), Err(IoError::Io(_))));
    }
}
