//! Dataset profiling: the spatial statistics that drive design choices.
//!
//! The paper's analysis turns on data characteristics — skew (taxi
//! hotspots), record size (points vs long polylines), selectivity — without
//! quantifying them. This module computes those statistics for any
//! dataset, so the synthetic data's character can be audited against the
//! real datasets' published descriptions (and so users can profile their
//! own data before choosing a system).

use sjc_geom::{Geometry, Mbr};

/// Spatial statistics of one dataset.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    pub records: usize,
    pub total_vertices: u64,
    pub avg_vertices: f64,
    /// Tight bounds of all geometry.
    pub extent: Mbr,
    /// Average serialized (WKT) bytes per record.
    pub avg_wkt_bytes: f64,
    /// Grid-cell occupancy skew: max cell count / mean non-empty cell count
    /// over a `grid × grid` histogram. 1.0 = perfectly uniform.
    pub occupancy_skew: f64,
    /// Fraction of grid cells with zero records.
    pub empty_cell_fraction: f64,
    /// Average MBR area relative to the extent (how "spread" records are —
    /// drives multi-assignment duplication under partitioning).
    pub relative_mbr_area: f64,
}

impl DatasetProfile {
    /// Profiles `geoms` with a `grid × grid` occupancy histogram.
    pub fn compute(geoms: &[Geometry], grid: usize) -> DatasetProfile {
        assert!(grid > 0, "grid must be nonzero");
        let mut extent = Mbr::empty();
        let mut total_vertices = 0u64;
        let mut wkt_bytes = 0u64;
        for g in geoms {
            extent.expand(&g.mbr());
            total_vertices += g.num_vertices() as u64;
            wkt_bytes += g.wkt_size_estimate();
        }
        let mut hist = vec![0u64; grid * grid];
        let mut rel_area = 0.0f64;
        if !extent.is_empty() && extent.area() > 0.0 {
            let w = extent.width() / grid as f64;
            let h = extent.height() / grid as f64;
            for g in geoms {
                let c = g.mbr().center();
                let cx = (((c.x - extent.min_x) / w) as usize).min(grid - 1);
                let cy = (((c.y - extent.min_y) / h) as usize).min(grid - 1);
                // sjc-lint: allow(no-panic-in-lib) — cx, cy are clamped to grid-1, so the cell index is in bounds
                hist[cy * grid + cx] += 1;
                rel_area += g.mbr().area() / extent.area();
            }
        }
        let non_empty: Vec<u64> = hist.iter().copied().filter(|&c| c > 0).collect();
        let mean = if non_empty.is_empty() {
            0.0
        } else {
            non_empty.iter().sum::<u64>() as f64 / non_empty.len() as f64
        };
        let max = hist.iter().copied().max().unwrap_or(0) as f64;
        DatasetProfile {
            records: geoms.len(),
            total_vertices,
            avg_vertices: if geoms.is_empty() {
                0.0
            } else {
                total_vertices as f64 / geoms.len() as f64
            },
            extent,
            avg_wkt_bytes: if geoms.is_empty() {
                0.0
            } else {
                wkt_bytes as f64 / geoms.len() as f64
            },
            occupancy_skew: if mean > 0.0 { max / mean } else { 0.0 },
            empty_cell_fraction: hist.iter().filter(|&&c| c == 0).count() as f64
                / hist.len() as f64,
            relative_mbr_area: if geoms.is_empty() { 0.0 } else { rel_area / geoms.len() as f64 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetId, ScaledDataset};
    use sjc_geom::Point;

    #[test]
    fn uniform_points_have_low_skew() {
        let geoms: Vec<Geometry> = (0..1600)
            .map(|i| Geometry::Point(Point::new((i % 40) as f64, (i / 40) as f64)))
            .collect();
        let p = DatasetProfile::compute(&geoms, 8);
        assert_eq!(p.records, 1600);
        assert!(p.occupancy_skew < 1.5, "uniform grid, got skew {}", p.occupancy_skew);
        assert_eq!(p.avg_vertices, 1.0);
    }

    #[test]
    fn taxi_data_is_visibly_skewed() {
        let taxi = ScaledDataset::generate(DatasetId::Taxi, 1e-4, 3);
        let p = DatasetProfile::compute(&taxi.geoms, 16);
        assert!(p.occupancy_skew > 3.0, "hotspots must dominate: skew {}", p.occupancy_skew);
    }

    #[test]
    fn polylines_report_vertex_and_byte_sizes() {
        let water = ScaledDataset::generate(DatasetId::Linearwater01, 1e-3, 3);
        let p = DatasetProfile::compute(&water.geoms, 8);
        assert!(p.avg_vertices > 19.0 && p.avg_vertices < 51.0);
        assert!(p.avg_wkt_bytes > 500.0, "long polylines serialize big");
        assert!(p.relative_mbr_area > 0.0);
    }

    #[test]
    fn linearwater_spreads_more_than_points() {
        let water = ScaledDataset::generate(DatasetId::Linearwater01, 1e-3, 3);
        let taxi = ScaledDataset::generate(DatasetId::Taxi1m, 1e-3, 3);
        let pw = DatasetProfile::compute(&water.geoms, 8);
        let pt = DatasetProfile::compute(&taxi.geoms, 8);
        assert!(
            pw.relative_mbr_area > 10.0 * pt.relative_mbr_area.max(1e-12),
            "meanders span far more area than points"
        );
    }

    #[test]
    fn empty_dataset_profile() {
        let p = DatasetProfile::compute(&[], 4);
        assert_eq!(p.records, 0);
        assert_eq!(p.occupancy_skew, 0.0);
        assert_eq!(p.empty_cell_fraction, 1.0);
    }
}
