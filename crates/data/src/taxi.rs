//! Taxi pickup point generator: a hotspot mixture.
//!
//! NYC taxi pickups are famously skewed — most trips start in a small dense
//! core (Manhattan) with a long uniform-ish tail across the boroughs. We
//! reproduce that with a mixture model: several Gaussian hotspots carrying
//! most of the mass over a uniform background. The skew is what stresses
//! partition balance (and, through oversized partitions, triggers
//! HadoopGIS's streaming-pipe failures at full scale).

use crate::rng::StdRng;
use rand_distr_normal::sample_normal;
use sjc_geom::{Geometry, Mbr, Point};

/// Fraction of points drawn from hotspots (vs uniform background).
const HOTSPOT_MASS: f64 = 0.75;

/// Relative hotspot layout: (center_x, center_y, sigma) in domain fractions.
/// One dominant downtown core plus two secondary centers.
const HOTSPOTS: [(f64, f64, f64); 3] = [
    (0.35, 0.55, 0.055), // "Manhattan" core: dense and dominant
    (0.55, 0.40, 0.075), // secondary center
    (0.70, 0.65, 0.095), // airport-ish cluster
];
/// Relative mass of each hotspot within the hotspot fraction.
const HOTSPOT_WEIGHTS: [f64; 3] = [0.55, 0.27, 0.18];

/// Generates `n` pickup points inside `domain`.
///
/// Two-phase parallel, stream-exact: a cheap serial pass snapshots the RNG
/// state at each point and skips over the draws that point will consume
/// (SplitMix64 skips in O(1)); the expensive sampling (Box–Muller `ln`,
/// `sqrt`, `cos`) then reruns per point concurrently from its snapshot.
/// The draw sequence — and therefore every coordinate — is bit-identical
/// to a single-threaded scan, and `rng` ends in the same state.
pub fn generate(rng: &mut StdRng, domain: Mbr, n: usize) -> Vec<Geometry> {
    let mut starts = Vec::with_capacity(n);
    for _ in 0..n {
        starts.push(rng.state());
        let hotspot = rng.gen::<f64>() < HOTSPOT_MASS;
        // Hotspot: weight pick + two Box–Muller normals (2 draws each);
        // background: uniform x and y.
        rng.skip(if hotspot { 5 } else { 2 });
    }
    sjc_par::par_map(&starts, |&s| {
        let mut r = StdRng::from_state(s);
        Geometry::Point(sample_point(&mut r, domain))
    })
}

/// Draws one pickup point — the draw structure mirrored by the skip pass in
/// [`generate`]: 1 branch draw, then 5 (hotspot) or 2 (background) more.
fn sample_point(rng: &mut StdRng, domain: Mbr) -> Point {
    let w = domain.width();
    let h = domain.height();
    if rng.gen::<f64>() < HOTSPOT_MASS {
        // Pick a hotspot by weight.
        let mut pick = rng.gen::<f64>();
        let mut idx = 0;
        for (i, &wt) in HOTSPOT_WEIGHTS.iter().enumerate() {
            if pick < wt {
                idx = i;
                break;
            }
            pick -= wt;
            idx = i;
        }
        // sjc-lint: allow(no-panic-in-lib) — idx comes from enumerating HOTSPOT_WEIGHTS, which matches HOTSPOTS in length
        let (cx, cy, sigma) = HOTSPOTS[idx];
        let x = domain.min_x + (cx + sample_normal(rng) * sigma) * w;
        let y = domain.min_y + (cy + sample_normal(rng) * sigma) * h;
        Point::new(x.clamp(domain.min_x, domain.max_x), y.clamp(domain.min_y, domain.max_y))
    } else {
        Point::new(domain.min_x + rng.gen::<f64>() * w, domain.min_y + rng.gen::<f64>() * h)
    }
}

/// Minimal Box–Muller standard normal sampler (keeps the dependency surface
/// at plain `rand`).
mod rand_distr_normal {
    use crate::rng::StdRng;

    pub fn sample_normal(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_points(n: usize) -> (Mbr, Vec<Point>) {
        let domain = Mbr::new(0.0, 0.0, 1000.0, 1000.0);
        let mut rng = StdRng::seed_from_u64(7);
        let pts = generate(&mut rng, domain, n)
            .into_iter()
            .map(|g| match g {
                Geometry::Point(p) => p,
                other => panic!("taxi generator must emit points, got {}", other.kind()),
            })
            .collect();
        (domain, pts)
    }

    #[test]
    fn parallel_generation_matches_single_pass_stream() {
        // Ground truth: the pre-parallel generator — one RNG scan, no
        // snapshots or skips.
        let serial = |rng: &mut StdRng, domain: Mbr, n: usize| -> Vec<Geometry> {
            (0..n).map(|_| Geometry::Point(sample_point(rng, domain))).collect()
        };
        let domain = Mbr::new(0.0, 0.0, 1000.0, 1000.0);
        for seed in [0u64, 7, 20150701] {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let par = generate(&mut a, domain, 3000);
            let ser = serial(&mut b, domain, 3000);
            assert_eq!(par, ser, "seed {seed}: coordinates must be bit-identical");
            assert_eq!(a, b, "seed {seed}: final RNG state must match");
        }
    }

    #[test]
    fn emits_requested_count_inside_domain() {
        let (domain, pts) = gen_points(5000);
        assert_eq!(pts.len(), 5000);
        assert!(pts.iter().all(|p| domain.contains_point(p)));
    }

    #[test]
    fn distribution_is_skewed() {
        let (domain, pts) = gen_points(20_000);
        // Count points in the hotspot core cell (10% x 10% of the domain
        // around the primary hotspot) vs an equally-sized far corner.
        let core = Mbr::new(0.30 * 1000.0, 0.50 * 1000.0, 0.40 * 1000.0, 0.60 * 1000.0);
        let corner = Mbr::new(0.0, 0.0, 100.0, 100.0);
        assert_eq!(core.area(), corner.area());
        let in_core = pts.iter().filter(|p| core.contains_point(p)).count();
        let in_corner = pts.iter().filter(|p| corner.contains_point(p)).count();
        assert!(
            in_core > 10 * in_corner.max(1),
            "hotspot skew missing: core={in_core} corner={in_corner}"
        );
        let _ = domain;
    }

    #[test]
    fn background_covers_whole_domain() {
        let (_, pts) = gen_points(20_000);
        // Every quadrant receives some points (uniform background).
        for (qx, qy) in [(0.0, 0.0), (500.0, 0.0), (0.0, 500.0), (500.0, 500.0)] {
            let quad = Mbr::new(qx, qy, qx + 500.0, qy + 500.0);
            assert!(pts.iter().any(|p| quad.contains_point(p)), "empty quadrant at {qx},{qy}");
        }
    }
}
