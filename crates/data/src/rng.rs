//! Seeded, std-only pseudo-random number generation.
//!
//! The offline build cannot depend on the `rand` crate, and the repo's
//! determinism invariant (`sjc-lint`'s `no-nondeterminism` rule) forbids
//! entropy-seeded generators anyway: every dataset must be a pure function
//! of its `u64` seed so that measured comparisons are reproducible. This
//! module provides exactly that — a SplitMix64 generator behind the small
//! slice of the `rand` API the generators use (`seed_from_u64`, `gen`,
//! `gen_range`, `gen_bool`). The stream is stable across platforms and Rust
//! versions, which `rand`'s `StdRng` explicitly does not guarantee.

use std::ops::{Range, RangeInclusive};

/// SplitMix64's fixed state increment: the state advances by this constant
/// per output regardless of the value drawn, which is what makes exact
/// O(1) jump-ahead ([`StdRng::skip`]) possible.
const GOLDEN: u64 = 0x9E3779B97F4A7C15;

/// A deterministic seeded generator (SplitMix64, public-domain algorithm by
/// Sebastiano Vigna). The name mirrors `rand::rngs::StdRng` to keep the
/// generator call-sites idiomatic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator whose whole stream is a function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    /// Raw generator state — snapshot it with this and resume with
    /// [`StdRng::from_state`] to split one stream across threads without
    /// changing a single draw.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator at a previously snapshotted [`StdRng::state`].
    pub fn from_state(state: u64) -> Self {
        StdRng { state }
    }

    /// Skips `draws` outputs in O(1). Exact: SplitMix64 adds a fixed
    /// increment to its state per output, so skipping is one multiply.
    pub fn skip(&mut self, draws: u64) {
        self.state = self.state.wrapping_add(GOLDEN.wrapping_mul(draws));
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform sample of `T` over its natural domain (`[0, 1)` for floats,
    /// the full range for integers).
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range (`a..b` or `a..=b`).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Types samplable over their natural domain.
pub trait Sample {
    fn sample(rng: &mut StdRng) -> Self;
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits.
    fn sample(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable uniformly. Modulo reduction is used for integers — the
/// bias is far below anything the synthetic-data distributions can resolve.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut StdRng) -> u64 {
        let span = self.end.saturating_sub(self.start).max(1);
        self.start + rng.next_u64() % span
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.start as u64..self.end as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        rng.gen_range(lo as u64..hi as u64 + 1) as usize
    }
}

impl SampleRange for RangeInclusive<u64> {
    type Output = u64;
    fn sample(self, rng: &mut StdRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            // Full-domain range: every u64 is a valid sample.
            return rng.next_u64();
        }
        lo + rng.next_u64() % span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(20150701);
        let mut b = StdRng::seed_from_u64(20150701);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn skip_equals_serial_draws() {
        for &(seed, n) in &[(0u64, 0u64), (7, 1), (42, 13), (u64::MAX, 1000)] {
            let mut stepped = StdRng::seed_from_u64(seed);
            for _ in 0..n {
                let _ = stepped.next_u64();
            }
            let mut skipped = StdRng::seed_from_u64(seed);
            skipped.skip(n);
            assert_eq!(skipped.next_u64(), stepped.next_u64(), "seed {seed} n {n}");
        }
    }

    #[test]
    fn state_snapshot_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(99);
        let _ = rng.next_u64();
        let snap = rng.state();
        let expected: Vec<u64> = (0..10).map(|_| rng.next_u64()).collect();
        let mut resumed = StdRng::from_state(snap);
        let got: Vec<u64> = (0..10).map(|_| resumed.next_u64()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_cover_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!((2..=5).contains(&rng.gen_range(2usize..=5)));
            assert!((10..20).contains(&rng.gen_range(10u64..20)));
            let f = rng.gen_range(-3.0..7.0);
            assert!((-3.0..7.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}/10000 at p=0.25");
    }
}
