//! Process-wide dataset cache.
//!
//! Experiments regenerate the same `(dataset, scale, seed)` triples over and
//! over — every grid cell, every system variant, every bench iteration pays
//! the full generator cost for identical bytes. Generation is a pure
//! function of that key, so the result is cached behind an `Arc` and handed
//! out for free on every repeat request. Host-side only: cached and
//! uncached runs produce identical datasets, so simulated `RunTrace`s are
//! unaffected.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::catalog::{DatasetId, ScaledDataset};

/// `(dataset id, scale bits, seed)` — the exact argument triple of
/// [`ScaledDataset::generate`]. Scale is keyed by its bit pattern so the
/// lookup is exact (no float comparison subtleties).
type Key = (u8, u64, u64);

/// Bounded size: a full experiment grid touches a handful of triples; 32
/// comfortably covers every suite while bounding worst-case memory.
const MAX_ENTRIES: usize = 32;

static CACHE: OnceLock<Mutex<BTreeMap<Key, Arc<ScaledDataset>>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<BTreeMap<Key, Arc<ScaledDataset>>> {
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock(
    m: &Mutex<BTreeMap<Key, Arc<ScaledDataset>>>,
) -> std::sync::MutexGuard<'_, BTreeMap<Key, Arc<ScaledDataset>>> {
    match m.lock() {
        Ok(g) => g,
        // A panicked holder can only have completed or skipped an insert;
        // the map itself is always in a consistent state.
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Cached [`ScaledDataset::generate`]: returns the shared dataset for the
/// key, generating it only on the first request. Repeat requests are a map
/// lookup plus an `Arc` clone — no generator work (the cache-hit tests pin
/// this via pointer identity).
pub fn generate_cached(id: DatasetId, scale: f64, seed: u64) -> Arc<ScaledDataset> {
    let key: Key = (id as u8, scale.to_bits(), seed);
    if let Some(ds) = lock(cache()).get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(ds);
    }
    // Generate outside the lock so concurrent misses on different keys
    // don't serialize; a racing duplicate of the same key produces an
    // identical dataset, and first-insert-wins keeps pointer identity
    // stable afterwards.
    MISSES.fetch_add(1, Ordering::Relaxed);
    let ds = Arc::new(ScaledDataset::generate(id, scale, seed));
    let mut map = lock(cache());
    let entry = Arc::clone(map.entry(key).or_insert(ds));
    while map.len() > MAX_ENTRIES {
        let oldest = map.keys().next().copied();
        match oldest {
            Some(k) if k != key => {
                map.remove(&k);
            }
            _ => break,
        }
    }
    entry
}

/// `(hits, misses)` since process start — for tests and `perfsnap`
/// reporting.
pub fn cache_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_generation_is_a_pointer_hit() {
        // A key no other test uses, so the first call is a genuine miss.
        let (h0, m0) = cache_stats();
        let a = generate_cached(DatasetId::Nycb, 0.031_25, 0xCAC4E);
        let b = generate_cached(DatasetId::Nycb, 0.031_25, 0xCAC4E);
        let (h1, m1) = cache_stats();
        assert!(
            Arc::ptr_eq(&a, &b),
            "second request must return the cached allocation — no generator work"
        );
        assert_eq!(m1 - m0, 1, "exactly one miss for the first request");
        assert!(h1 - h0 >= 1, "the repeat request must be a hit");
    }

    #[test]
    fn cached_equals_uncached() {
        let cached = generate_cached(DatasetId::Nycb, 0.015_625, 0xFACADE);
        let fresh = ScaledDataset::generate(DatasetId::Nycb, 0.015_625, 0xFACADE);
        assert_eq!(cached.geoms, fresh.geoms);
        assert_eq!(cached.domain, fresh.domain);
    }

    #[test]
    fn distinct_keys_get_distinct_datasets() {
        let a = generate_cached(DatasetId::Nycb, 0.007_812_5, 1);
        let b = generate_cached(DatasetId::Nycb, 0.007_812_5, 2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.geoms, b.geoms);
    }
}
