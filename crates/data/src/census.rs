//! Census-block polygon generator.
//!
//! NYC census blocks tessellate the city with *density-adaptive* sizes:
//! tiny blocks in Manhattan, large ones in outer boroughs. We reproduce this
//! by BSP-splitting the domain over a sample drawn from the same hotspot
//! mixture as the taxi points — so blocks are small exactly where pickups
//! are dense, as in the real city — then turning each cell into an
//! irregular polygon (inset, jittered edge vertices). The gaps between
//! blocks play the role of streets; like the real data, not every pickup
//! point falls inside a block.

use crate::rng::StdRng;
use sjc_geom::{Geometry, Mbr, Point, Polygon};

/// Generates `n` census-block polygons tessellating `domain`.
pub fn generate(rng: &mut StdRng, domain: Mbr, n: usize) -> Vec<Geometry> {
    // Sample the population surface to drive adaptive splitting. Cap the
    // sample so generation stays linear for big n.
    let sample_size = (n * 12).clamp(256, 200_000);
    let sample: Vec<Point> = crate::taxi::generate(rng, domain, sample_size)
        .into_iter()
        .filter_map(|g| match g {
            Geometry::Point(p) => Some(p),
            _ => None, // the taxi generator emits only points
        })
        .collect();

    let cells = bsp_cells(domain, sample, n);
    cells.into_iter().map(|cell| Geometry::Polygon(cell_to_block(rng, cell))).collect()
}

/// Recursive median splits (duplicated from sjc-index's partitioner in
/// miniature to keep this crate independent of index internals; the split
/// rule is three lines).
fn bsp_cells(domain: Mbr, mut sample: Vec<Point>, target: usize) -> Vec<Mbr> {
    let capacity = (sample.len() / target.max(1)).max(1);
    let mut out = Vec::with_capacity(target);
    split(domain, &mut sample, capacity, 40, &mut out);
    out
}

fn split(region: Mbr, sample: &mut [Point], capacity: usize, depth: usize, out: &mut Vec<Mbr>) {
    if sample.len() <= capacity || depth == 0 {
        out.push(region);
        return;
    }
    let vertical = region.width() >= region.height();
    let mid = sample.len() / 2;
    if vertical {
        sample.select_nth_unstable_by(mid, |a, b| a.x.total_cmp(&b.x));
        // sjc-lint: allow(no-panic-in-lib) — mid = len/2 < len, and len > capacity >= 1 here
        let cut = sample[mid].x.clamp(region.min_x, region.max_x);
        if cut <= region.min_x || cut >= region.max_x {
            out.push(region);
            return;
        }
        let (lo, hi) = sample.split_at_mut(mid);
        split(
            Mbr::new(region.min_x, region.min_y, cut, region.max_y),
            lo,
            capacity,
            depth - 1,
            out,
        );
        split(
            Mbr::new(cut, region.min_y, region.max_x, region.max_y),
            hi,
            capacity,
            depth - 1,
            out,
        );
    } else {
        sample.select_nth_unstable_by(mid, |a, b| a.y.total_cmp(&b.y));
        // sjc-lint: allow(no-panic-in-lib) — mid = len/2 < len, and len > capacity >= 1 here
        let cut = sample[mid].y.clamp(region.min_y, region.max_y);
        if cut <= region.min_y || cut >= region.max_y {
            out.push(region);
            return;
        }
        let (lo, hi) = sample.split_at_mut(mid);
        split(
            Mbr::new(region.min_x, region.min_y, region.max_x, cut),
            lo,
            capacity,
            depth - 1,
            out,
        );
        split(
            Mbr::new(region.min_x, cut, region.max_x, region.max_y),
            hi,
            capacity,
            depth - 1,
            out,
        );
    }
}

/// Turns a BSP cell into an irregular block polygon: inset the rectangle by
/// a street margin, then walk its boundary placing jittered vertices.
fn cell_to_block(rng: &mut StdRng, cell: Mbr) -> Polygon {
    let margin = 0.04 * cell.width().min(cell.height());
    let inner = Mbr::new(
        cell.min_x + margin,
        cell.min_y + margin,
        cell.max_x - margin,
        cell.max_y - margin,
    );
    let jitter = margin * 0.8;
    let mut ring = Vec::with_capacity(12);

    // Three vertices per side (corner + two interior), jittered inward so
    // neighbouring blocks never overlap.
    let mut push = |x: f64, y: f64, rng: &mut StdRng| {
        let jx = rng.gen::<f64>() * jitter;
        let jy = rng.gen::<f64>() * jitter;
        // Jitter pushes toward the cell interior.
        let cx = (inner.min_x + inner.max_x) / 2.0;
        let cy = (inner.min_y + inner.max_y) / 2.0;
        ring.push(Point::new(x + if x < cx { jx } else { -jx }, y + if y < cy { jy } else { -jy }));
    };

    let xs = [
        inner.min_x,
        (2.0 * inner.min_x + inner.max_x) / 3.0,
        (inner.min_x + 2.0 * inner.max_x) / 3.0,
    ];
    let ys = [
        inner.min_y,
        (2.0 * inner.min_y + inner.max_y) / 3.0,
        (inner.min_y + 2.0 * inner.max_y) / 3.0,
    ];
    // Bottom edge (left to right), right edge (bottom to top), top edge
    // (right to left), left edge (top to bottom).
    for &x in &xs {
        push(x, inner.min_y, rng);
    }
    for &y in &ys {
        push(inner.max_x, y, rng);
    }
    for &x in xs.iter().rev() {
        push(x, inner.max_y, rng);
    }
    for &y in ys.iter().rev() {
        push(inner.min_x, y, rng);
    }
    Polygon::new(ring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_geom::algorithms::point_in_polygon;

    fn blocks(n: usize) -> Vec<Polygon> {
        let mut rng = StdRng::seed_from_u64(11);
        generate(&mut rng, Mbr::new(0.0, 0.0, 1000.0, 1000.0), n)
            .into_iter()
            .map(|g| match g {
                Geometry::Polygon(p) => p,
                other => panic!("census generator must emit polygons, got {}", other.kind()),
            })
            .collect()
    }

    #[test]
    fn emits_roughly_requested_count() {
        let b = blocks(100);
        assert!((70..=160).contains(&b.len()), "got {} blocks", b.len());
    }

    #[test]
    fn blocks_are_valid_and_disjoint() {
        let b = blocks(60);
        for p in &b {
            assert!(p.area() > 0.0);
            assert!(p.shell().len() >= 8);
        }
        // Interior-disjointness: centers of each block are inside no other block.
        for (i, p) in b.iter().enumerate() {
            let c = p.mbr().center();
            for (j, q) in b.iter().enumerate() {
                if i != j {
                    assert!(!point_in_polygon(q, &c), "block {i} center inside block {j}");
                }
            }
        }
    }

    #[test]
    fn dense_areas_have_smaller_blocks() {
        let b = blocks(200);
        // Blocks near the primary hotspot (0.35, 0.55 of domain) should be
        // smaller on average than blocks near the sparse corner.
        let hotspot = Point::new(350.0, 550.0);
        let corner = Point::new(950.0, 50.0);
        let nearest_area = |target: &Point| {
            b.iter()
                .min_by(|p, q| {
                    let dp = p.mbr().center().distance(target);
                    let dq = q.mbr().center().distance(target);
                    dp.partial_cmp(&dq).unwrap()
                })
                .map(|p| p.area())
                .unwrap()
        };
        assert!(nearest_area(&hotspot) < nearest_area(&corner), "downtown blocks must be smaller");
    }

    #[test]
    fn most_hotspot_points_fall_in_some_block() {
        // The tessellation must actually catch the population: generate taxi
        // points and verify a solid majority land inside blocks.
        let domain = Mbr::new(0.0, 0.0, 1000.0, 1000.0);
        let b = blocks(150);
        let mut rng = StdRng::seed_from_u64(99);
        let pts = crate::taxi::generate(&mut rng, domain, 2000);
        let inside = pts
            .iter()
            .filter(|g| {
                let p = match g {
                    Geometry::Point(p) => p,
                    _ => unreachable!(),
                };
                b.iter().any(|poly| point_in_polygon(poly, p))
            })
            .count();
        assert!(inside > 1400, "only {inside}/2000 points landed in blocks — streets too wide");
    }
}
