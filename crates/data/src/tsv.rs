//! TSV + WKT text serialization.
//!
//! All three systems ingest tab-separated text whose last field is WKT.
//! HadoopGIS additionally *re-serializes* records between every streaming
//! stage — `to_tsv_lines`/`parse_tsv_line` are exactly the operations its
//! pipes pay for, and what the cost model's parse/serialize constants meter.

use sjc_geom::wkt::{parse_wkt, to_wkt, WktError};
use sjc_geom::Geometry;

/// Serializes `(id, geometry)` records into `id \t WKT` lines.
pub fn to_tsv_lines<'a, I>(records: I) -> Vec<String>
where
    I: IntoIterator<Item = (u64, &'a Geometry)>,
{
    records.into_iter().map(|(id, g)| format!("{id}\t{}", to_wkt(g))).collect()
}

/// Parse error for a TSV record line.
#[derive(Debug, Clone, PartialEq)]
pub enum TsvError {
    MissingField(&'static str),
    BadId(String),
    BadWkt(WktError),
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsvError::MissingField(name) => write!(f, "missing TSV field: {name}"),
            TsvError::BadId(s) => write!(f, "invalid record id: {s:?}"),
            TsvError::BadWkt(e) => write!(f, "invalid WKT: {e}"),
        }
    }
}

impl std::error::Error for TsvError {}

/// Parses an `id \t WKT` line back into a record.
pub fn parse_tsv_line(line: &str) -> Result<(u64, Geometry), TsvError> {
    let mut fields = line.splitn(2, '\t');
    let id_str = fields.next().ok_or(TsvError::MissingField("id"))?;
    let wkt = fields.next().ok_or(TsvError::MissingField("wkt"))?;
    let id = id_str.trim().parse::<u64>().map_err(|_| TsvError::BadId(id_str.to_string()))?;
    let geom = parse_wkt(wkt).map_err(TsvError::BadWkt)?;
    Ok((id, geom))
}

/// Total byte size of a batch of lines (newline included) — the exact
/// volume a streaming stage pipes.
pub fn lines_bytes(lines: &[String]) -> u64 {
    lines.iter().map(|l| l.len() as u64 + 1).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_geom::{LineString, Point};

    #[test]
    fn round_trip() {
        let geoms = [
            Geometry::Point(Point::new(1.0, 2.0)),
            Geometry::LineString(LineString::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)])),
        ];
        let lines = to_tsv_lines(geoms.iter().enumerate().map(|(i, g)| (i as u64, g)));
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let (id, g) = parse_tsv_line(line).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(&g, &geoms[i]);
        }
    }

    #[test]
    fn error_cases() {
        assert!(matches!(parse_tsv_line(""), Err(TsvError::MissingField(_))));
        assert!(matches!(parse_tsv_line("abc\tPOINT (1 2)"), Err(TsvError::BadId(_))));
        assert!(matches!(parse_tsv_line("1\tnot wkt"), Err(TsvError::BadWkt(_))));
        assert!(matches!(parse_tsv_line("17"), Err(TsvError::MissingField("wkt"))));
    }

    #[test]
    fn byte_accounting_includes_newlines() {
        let lines = vec!["ab".to_string(), "c".to_string()];
        assert_eq!(lines_bytes(&lines), 2 + 1 + 1 + 1);
    }
}
