//! TIGER-like polyline generators: road `edges` and `linearwater`.
//!
//! TIGER `edges` records are short street segments (a handful of vertices,
//! ~327 bytes/record per Table 1); `linearwater` records are long meandering
//! streams (~1.4 KB/record). The polyline-with-polyline join of the paper's
//! second experiment intersects the two. Roads follow a loose grid with
//! noise; waters meander with correlated direction changes — giving the
//! realistic pattern of many short candidates against few long ones.

use crate::rng::StdRng;
use sjc_geom::{Geometry, LineString, Mbr, Point};

/// Average vertex count of a road edge (TIGER edges ≈ 327 B/record ≈ 8
/// vertices of WKT text).
const EDGE_VERTICES: (usize, usize) = (3, 12);
/// Average vertex count of a water feature (~1.4 KB/record ≈ 35 vertices).
const WATER_VERTICES: (usize, usize) = (20, 50);

/// Generates `n` road-edge polylines: short, mostly axis-aligned walks.
pub fn generate_edges(rng: &mut StdRng, domain: Mbr, n: usize) -> Vec<Geometry> {
    // Street spacing derived from density: roads per unit area fixed, so
    // segment length scales with the domain like a real street grid.
    let seg_len = (domain.area() / (n as f64).max(1.0)).sqrt() * 0.8;
    // Per record after the vertex-count draw: axis + angle (2 draws, both
    // branches), then the walk (2 start draws + 2 per added vertex).
    par_walks(
        rng,
        n,
        EDGE_VERTICES,
        |verts| 2 + walk_draws(verts),
        move |r, verts| {
            // Roads prefer axis directions (a loose Manhattan grid).
            let axis = r.gen_bool(0.7);
            let base_angle = if axis {
                if r.gen_bool(0.5) {
                    0.0
                } else {
                    std::f64::consts::FRAC_PI_2
                }
            } else {
                r.gen::<f64>() * std::f64::consts::TAU
            };
            walk(r, domain, verts, seg_len / verts as f64, base_angle, 0.15)
        },
    )
}

/// Generates `n` water polylines: long correlated meanders.
pub fn generate_linearwater(rng: &mut StdRng, domain: Mbr, n: usize) -> Vec<Geometry> {
    // Waters are sparse but long: total length comparable to a road cell's
    // diagonal times a few.
    let seg_len = (domain.area() / (n as f64).max(1.0)).sqrt() * 1.5;
    // Per record after the vertex-count draw: one angle draw plus the walk.
    par_walks(
        rng,
        n,
        WATER_VERTICES,
        |verts| 1 + walk_draws(verts),
        move |r, verts| {
            let base_angle = r.gen::<f64>() * std::f64::consts::TAU;
            walk(r, domain, verts, seg_len / verts as f64 * 3.0, base_angle, 0.35)
        },
    )
}

/// Draws consumed by [`walk`]: start x/y plus angle-and-length per vertex.
fn walk_draws(verts: usize) -> u64 {
    2 + (verts.max(2) as u64 - 1) * 2
}

/// Two-phase parallel polyline generation, stream-exact with the old serial
/// loop: a serial pass snapshots the RNG per record — drawing only the
/// vertex count, then skipping that record's remaining draws in O(1) — and
/// the trigonometry-heavy walks rebuild concurrently from the snapshots.
/// Both the emitted geometry and `rng`'s final state are bit-identical to a
/// single-threaded scan.
fn par_walks(
    rng: &mut StdRng,
    n: usize,
    verts_range: (usize, usize),
    draws_after_verts: impl Fn(usize) -> u64,
    build: impl Fn(&mut StdRng, usize) -> LineString + Sync,
) -> Vec<Geometry> {
    let mut starts = Vec::with_capacity(n);
    for _ in 0..n {
        starts.push(rng.state());
        let verts = rng.gen_range(verts_range.0..=verts_range.1);
        rng.skip(draws_after_verts(verts));
    }
    sjc_par::par_map(&starts, |&s| {
        let mut r = StdRng::from_state(s);
        let verts = r.gen_range(verts_range.0..=verts_range.1);
        Geometry::LineString(build(&mut r, verts))
    })
}

/// A correlated random walk of `verts` vertices with mean step `step` and
/// per-step angular noise `wobble` (radians), clamped to the domain.
fn walk(
    rng: &mut StdRng,
    domain: Mbr,
    verts: usize,
    step: f64,
    mut angle: f64,
    wobble: f64,
) -> LineString {
    let mut x = domain.min_x + rng.gen::<f64>() * domain.width();
    let mut y = domain.min_y + rng.gen::<f64>() * domain.height();
    let mut pts = Vec::with_capacity(verts);
    pts.push(Point::new(x, y));
    for _ in 1..verts.max(2) {
        angle += (rng.gen::<f64>() - 0.5) * 2.0 * wobble;
        let len = step * (0.5 + rng.gen::<f64>());
        x = (x + len * angle.cos()).clamp(domain.min_x, domain.max_x);
        y = (y + len * angle.sin()).clamp(domain.min_y, domain.max_y);
        // Avoid zero-length duplicate vertices on the clamped boundary.
        let last = pts.last().copied().unwrap_or(Point::new(0.0, 0.0));
        if (last.x - x).abs() < 1e-9 && (last.y - y).abs() < 1e-9 {
            x = (x + step * 0.01).clamp(domain.min_x, domain.max_x);
            y = (y + step * 0.01).clamp(domain.min_y, domain.max_y);
            if (last.x - x).abs() < 1e-9 && (last.y - y).abs() < 1e-9 {
                // Fully cornered: nudge inward instead.
                x = (x - step * 0.02).clamp(domain.min_x, domain.max_x);
                y = (y - step * 0.02).clamp(domain.min_y, domain.max_y);
            }
        }
        pts.push(Point::new(x, y));
    }
    LineString::new(pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_geom::algorithms::linestrings_intersect;

    fn lines(gen: fn(&mut StdRng, Mbr, usize) -> Vec<Geometry>, n: usize) -> Vec<LineString> {
        let mut rng = StdRng::seed_from_u64(5);
        gen(&mut rng, Mbr::new(0.0, 0.0, 10_000.0, 10_000.0), n)
            .into_iter()
            .map(|g| match g {
                Geometry::LineString(l) => l,
                other => panic!("expected polylines, got {}", other.kind()),
            })
            .collect()
    }

    #[test]
    fn parallel_generation_matches_single_pass_stream() {
        // Ground truth: the pre-parallel generators — one RNG scan each.
        let serial_edges = |rng: &mut StdRng, domain: Mbr, n: usize| -> Vec<Geometry> {
            let seg_len = (domain.area() / (n as f64).max(1.0)).sqrt() * 0.8;
            (0..n)
                .map(|_| {
                    let verts = rng.gen_range(EDGE_VERTICES.0..=EDGE_VERTICES.1);
                    let axis = rng.gen_bool(0.7);
                    let base_angle = if axis {
                        if rng.gen_bool(0.5) {
                            0.0
                        } else {
                            std::f64::consts::FRAC_PI_2
                        }
                    } else {
                        rng.gen::<f64>() * std::f64::consts::TAU
                    };
                    Geometry::LineString(walk(
                        rng,
                        domain,
                        verts,
                        seg_len / verts as f64,
                        base_angle,
                        0.15,
                    ))
                })
                .collect()
        };
        let serial_water = |rng: &mut StdRng, domain: Mbr, n: usize| -> Vec<Geometry> {
            let seg_len = (domain.area() / (n as f64).max(1.0)).sqrt() * 1.5;
            (0..n)
                .map(|_| {
                    let verts = rng.gen_range(WATER_VERTICES.0..=WATER_VERTICES.1);
                    let base_angle = rng.gen::<f64>() * std::f64::consts::TAU;
                    Geometry::LineString(walk(
                        rng,
                        domain,
                        verts,
                        seg_len / verts as f64 * 3.0,
                        base_angle,
                        0.35,
                    ))
                })
                .collect()
        };
        let domain = Mbr::new(0.0, 0.0, 10_000.0, 10_000.0);
        for seed in [0u64, 5, 20150701] {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            assert_eq!(generate_edges(&mut a, domain, 500), serial_edges(&mut b, domain, 500));
            assert_eq!(a, b, "edges: final RNG state must match");
            assert_eq!(
                generate_linearwater(&mut a, domain, 200),
                serial_water(&mut b, domain, 200)
            );
            assert_eq!(a, b, "linearwater: final RNG state must match");
        }
    }

    #[test]
    fn edges_are_short_waters_are_long() {
        let edges = lines(generate_edges, 300);
        let waters = lines(generate_linearwater, 300);
        let avg =
            |ls: &[LineString]| ls.iter().map(LineString::length).sum::<f64>() / ls.len() as f64;
        assert!(
            avg(&waters) > 3.0 * avg(&edges),
            "waters {:.0} vs edges {:.0}",
            avg(&waters),
            avg(&edges)
        );
        let avg_verts = |ls: &[LineString]| {
            ls.iter().map(LineString::num_points).sum::<usize>() as f64 / ls.len() as f64
        };
        assert!(avg_verts(&edges) < 13.0);
        assert!(avg_verts(&waters) > 19.0);
    }

    #[test]
    fn vertices_are_distinct_consecutively() {
        for l in lines(generate_linearwater, 100) {
            for (a, b) in l.segments() {
                assert!(a.distance(b) > 0.0, "zero-length segment");
            }
        }
    }

    #[test]
    fn roads_and_waters_actually_intersect() {
        // The experiment's selectivity must be nonzero: some road crosses
        // some water.
        let edges = lines(generate_edges, 500);
        let waters = lines(generate_linearwater, 50);
        let hits = edges
            .iter()
            .flat_map(|e| waters.iter().map(move |w| (e, w)))
            .filter(|(e, w)| linestrings_intersect(e, w))
            .count();
        assert!(hits > 10, "only {hits} road-water crossings — selectivity too low");
    }

    #[test]
    fn geometry_stays_in_domain() {
        let domain = Mbr::new(0.0, 0.0, 10_000.0, 10_000.0);
        for l in lines(generate_edges, 200).iter().chain(lines(generate_linearwater, 50).iter()) {
            assert!(domain.contains(&l.mbr()));
        }
    }
}
