//! Geometry-engine cost profiles: the JTS vs GEOS factor.
//!
//! The paper attributes a large share of HadoopGIS's slowness to its GEOS
//! (C++) geometry library being "several times" slower than the JTS (Java)
//! library used by SpatialHadoop and SpatialSpark (citing the authors' own
//! measurements in their CloudDM'15 paper). We reproduce this as a *cost
//! profile*: every refinement call computes the true geometric answer with
//! the same code, but reports a simulated duration that differs by the
//! engine's factor. This keeps results identical across systems (a
//! correctness invariant the integration tests check) while letting the
//! benchmark harness show the engine's contribution to end-to-end runtime.

use crate::geometry::Geometry;

/// Which library profile a system links against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Java Topology Suite — used by SpatialHadoop and SpatialSpark.
    Jts,
    /// Geometry Engine Open Source (C++ port of JTS) — used by HadoopGIS.
    Geos,
}

impl EngineKind {
    /// Simulated slowdown factor relative to JTS.
    ///
    /// Calibration: the paper (§II.C) reports JTS "can be several times
    /// faster than GEOS"; the authors' CloudDM'15 reference measured roughly 4×.
    pub fn refinement_factor(self) -> f64 {
        match self {
            EngineKind::Jts => 1.0,
            EngineKind::Geos => 4.0,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Jts => "JTS",
            EngineKind::Geos => "GEOS",
        }
    }
}

/// Baseline per-refinement fixed cost in simulated nanoseconds (JTS scale).
const REFINE_BASE_NS: f64 = 150.0;
/// Additional cost per vertex examined during refinement (JTS scale).
const REFINE_PER_VERTEX_NS: f64 = 12.0;
/// Per-MBR filter test cost (engine independent — pure arithmetic).
const FILTER_NS: u64 = 8;

/// A geometry engine: computes exact predicates and accounts their
/// simulated cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeometryEngine {
    kind: EngineKind,
}

impl GeometryEngine {
    pub const fn new(kind: EngineKind) -> Self {
        GeometryEngine { kind }
    }

    pub const fn jts() -> Self {
        GeometryEngine::new(EngineKind::Jts)
    }

    pub const fn geos() -> Self {
        GeometryEngine::new(EngineKind::Geos)
    }

    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Simulated cost of one refinement over geometries with the given
    /// total vertex count.
    pub fn refine_cost_ns(&self, total_vertices: usize) -> u64 {
        let base = REFINE_BASE_NS + REFINE_PER_VERTEX_NS * total_vertices as f64;
        (base * self.kind.refinement_factor()) as u64
    }

    /// Cost of one MBR filter test.
    pub fn filter_cost_ns(&self) -> u64 {
        FILTER_NS
    }

    /// Exact `intersects` refinement plus its simulated cost.
    pub fn intersects(&self, a: &Geometry, b: &Geometry) -> (bool, u64) {
        let cost = self.refine_cost_ns(a.num_vertices() + b.num_vertices());
        (a.intersects(b), cost)
    }

    /// Exact `contains` refinement plus its simulated cost.
    pub fn contains(&self, a: &Geometry, b: &Geometry) -> (bool, u64) {
        let cost = self.refine_cost_ns(a.num_vertices() + b.num_vertices());
        (a.contains(b), cost)
    }

    /// Exact within-distance refinement plus its simulated cost.
    pub fn within_distance(&self, a: &Geometry, b: &Geometry, d: f64) -> (bool, u64) {
        let cost = self.refine_cost_ns(a.num_vertices() + b.num_vertices());
        (a.within_distance(b, d), cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LineString, Point};

    fn cross_pair() -> (Geometry, Geometry) {
        let a =
            Geometry::LineString(LineString::new(vec![Point::new(0.0, 0.0), Point::new(2.0, 2.0)]));
        let b =
            Geometry::LineString(LineString::new(vec![Point::new(0.0, 2.0), Point::new(2.0, 0.0)]));
        (a, b)
    }

    #[test]
    fn engines_agree_on_results() {
        let (a, b) = cross_pair();
        let (jts_hit, _) = GeometryEngine::jts().intersects(&a, &b);
        let (geos_hit, _) = GeometryEngine::geos().intersects(&a, &b);
        assert_eq!(jts_hit, geos_hit, "cost profiles must never change answers");
        assert!(jts_hit);
    }

    #[test]
    fn geos_charges_more_than_jts() {
        let (a, b) = cross_pair();
        let (_, jts_cost) = GeometryEngine::jts().intersects(&a, &b);
        let (_, geos_cost) = GeometryEngine::geos().intersects(&a, &b);
        assert!(geos_cost > jts_cost);
        let ratio = geos_cost as f64 / jts_cost as f64;
        assert!((3.5..=4.5).contains(&ratio), "ratio ~4x, got {ratio}");
    }

    #[test]
    fn cost_scales_with_vertex_count() {
        let e = GeometryEngine::jts();
        assert!(e.refine_cost_ns(100) > e.refine_cost_ns(4));
    }

    #[test]
    fn filter_is_much_cheaper_than_refinement() {
        let e = GeometryEngine::jts();
        assert!(e.filter_cost_ns() * 10 < e.refine_cost_ns(4));
    }
}
