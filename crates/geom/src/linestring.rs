//! Polyline (`LINESTRING`) type.

use crate::mbr::Mbr;
use crate::point::Point;

/// An open polyline — a sequence of at least two vertices.
///
/// This models the TIGER `edges` (road segments) and `linearwater`
/// (rivers/streams) records of the paper's second experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct LineString {
    points: Vec<Point>,
}

impl LineString {
    /// Creates a polyline. Panics if fewer than two vertices are supplied —
    /// degenerate polylines never occur in well-formed spatial data and
    /// tolerating them would poison every downstream algorithm.
    pub fn new(points: Vec<Point>) -> Self {
        assert!(points.len() >= 2, "LineString requires >= 2 vertices");
        LineString { points }
    }

    /// Fallible constructor for parsing paths.
    pub fn try_new(points: Vec<Point>) -> Option<Self> {
        if points.len() >= 2 {
            Some(LineString { points })
        } else {
            None
        }
    }

    /// The vertices.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of vertices.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Iterator over consecutive vertex pairs (the segments).
    pub fn segments(&self) -> impl Iterator<Item = (&Point, &Point)> {
        self.points.windows(2).filter_map(|w| match w {
            [a, b] => Some((a, b)),
            _ => None,
        })
    }

    /// Number of segments (`num_points - 1`).
    pub fn num_segments(&self) -> usize {
        self.points.len() - 1
    }

    /// Tight MBR over all vertices.
    pub fn mbr(&self) -> Mbr {
        Mbr::from_points(self.points.iter())
    }

    /// Total arc length.
    pub fn length(&self) -> f64 {
        self.segments().map(|(a, b)| a.distance(b)).sum()
    }

    /// Whether first and last vertices coincide.
    pub fn is_closed(&self) -> bool {
        self.points.first() == self.points.last()
    }

    /// Translated copy.
    pub fn translate(&self, dx: f64, dy: f64) -> LineString {
        LineString { points: self.points.iter().map(|p| p.translate(dx, dy)).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(coords: &[(f64, f64)]) -> LineString {
        LineString::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    #[test]
    fn length_of_l_shape() {
        let l = ls(&[(0.0, 0.0), (3.0, 0.0), (3.0, 4.0)]);
        assert_eq!(l.length(), 7.0);
        assert_eq!(l.num_segments(), 2);
    }

    #[test]
    fn mbr_covers_all_vertices() {
        let l = ls(&[(0.0, 1.0), (5.0, -2.0), (2.0, 3.0)]);
        assert_eq!(l.mbr(), Mbr::new(0.0, -2.0, 5.0, 3.0));
    }

    #[test]
    #[should_panic(expected = ">= 2 vertices")]
    fn rejects_single_vertex() {
        let _ = LineString::new(vec![Point::new(0.0, 0.0)]);
    }

    #[test]
    fn try_new_returns_none_for_short_input() {
        assert!(LineString::try_new(vec![Point::new(0.0, 0.0)]).is_none());
        assert!(LineString::try_new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).is_some());
    }

    #[test]
    fn closed_detection() {
        assert!(ls(&[(0.0, 0.0), (1.0, 0.0), (0.0, 0.0)]).is_closed());
        assert!(!ls(&[(0.0, 0.0), (1.0, 0.0)]).is_closed());
    }

    #[test]
    fn translate_preserves_length() {
        let l = ls(&[(0.0, 0.0), (3.0, 0.0), (3.0, 4.0)]);
        let t = l.translate(10.0, -5.0);
        assert!((t.length() - l.length()).abs() < 1e-12);
        assert_eq!(t.mbr(), l.mbr().translate(10.0, -5.0));
    }

    #[test]
    fn segments_iterator_pairs_consecutively() {
        let l = ls(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let segs: Vec<_> = l.segments().collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].1, segs[1].0);
    }
}
