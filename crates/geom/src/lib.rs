//! # sjc-geom — computational geometry engine
//!
//! A from-scratch substitute for the JTS / GEOS geometry libraries used by the
//! three systems evaluated in *"Spatial Join Query Processing in Cloud:
//! Analyzing Design Choices and Performance Comparisons"* (ICPP 2015).
//!
//! The crate provides:
//!
//! * geometry types: [`Point`], [`LineString`], [`Polygon`], the [`Geometry`]
//!   enum, and [`Mbr`] (minimum bounding rectangle / envelope);
//! * robust-enough planar predicates ([`predicates`]): orientation,
//!   segment–segment intersection with collinear handling;
//! * spatial relationship algorithms ([`algorithms`]): point-in-polygon,
//!   intersection tests for every geometry pairing, and distance computation;
//! * a [WKT](wkt) reader/writer, because all three evaluated systems exchange
//!   geometry as WKT text (HadoopGIS pipes it through Hadoop Streaming,
//!   SpatialHadoop/SpatialSpark parse it from TSV);
//! * an [`engine::GeometryEngine`] cost profile abstraction that models the
//!   paper's GEOS-vs-JTS performance gap: both profiles compute identical
//!   results, but the *charged* simulated cost per refinement call differs.
//!
//! All computation is `f64`-based with orientation-predicate style robustness;
//! the invariants that matter to spatial joins (symmetry of `intersects`,
//! MBR-containment of exact hits, translation invariance) are covered by
//! property tests.
//!
//! ```
//! use sjc_geom::wkt::parse_wkt;
//!
//! let block = parse_wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))").unwrap();
//! let pickup = parse_wkt("POINT (1 2)").unwrap();
//! assert!(block.intersects(&pickup));
//! assert_eq!(block.area(), 16.0);
//! ```

pub mod algorithms;
pub mod engine;
pub mod geometry;
pub mod linestring;
pub mod mbr;
mod multi_tests;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod wkb;
pub mod wkt;

pub use engine::{EngineKind, GeometryEngine};
pub use geometry::Geometry;
pub use linestring::LineString;
pub use mbr::Mbr;
pub use point::Point;
pub use polygon::Polygon;
