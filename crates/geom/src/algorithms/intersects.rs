//! Exact intersection tests between composite geometries.
//!
//! These implement the refinement step of intersection-predicate joins.
//! The polyline–polyline test is the hot path of the paper's
//! `edges × linearwater` experiment: each candidate pair that survives the
//! MBR filter runs a segment-level sweep here.

use crate::algorithms::point_in_polygon::point_in_polygon;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::predicates::segments_intersect;

/// Exact polyline–polyline intersection.
///
/// Uses a short-circuiting double loop over segments with per-segment MBR
/// rejection — effectively the "indexed nested loop at the segment level"
/// that JTS performs for small geometries. For the synthetic TIGER-like
/// data, polylines have tens of vertices, so an O(n·m) scan with MBR
/// pre-checks is the right tool (building a per-geometry index would cost
/// more than it saves, which is also why JTS only switches strategies for
/// very large geometries).
pub fn linestrings_intersect(a: &LineString, b: &LineString) -> bool {
    if !a.mbr().intersects(&b.mbr()) {
        return false;
    }
    for (p1, p2) in a.segments() {
        // Per-segment bounding box against b's envelope first.
        let (sx0, sx1) = (p1.x.min(p2.x), p1.x.max(p2.x));
        let (sy0, sy1) = (p1.y.min(p2.y), p1.y.max(p2.y));
        let bm = b.mbr();
        if sx1 < bm.min_x || sx0 > bm.max_x || sy1 < bm.min_y || sy0 > bm.max_y {
            continue;
        }
        for (q1, q2) in b.segments() {
            if sx1 < q1.x.min(q2.x)
                || sx0 > q1.x.max(q2.x)
                || sy1 < q1.y.min(q2.y)
                || sy0 > q1.y.max(q2.y)
            {
                continue;
            }
            if segments_intersect(p1, p2, q1, q2) {
                return true;
            }
        }
    }
    false
}

/// Exact polygon–polyline intersection: true when any edge pair crosses or
/// the polyline lies entirely inside the polygon.
pub fn polygon_intersects_linestring(poly: &Polygon, line: &LineString) -> bool {
    if !poly.mbr().intersects(&line.mbr()) {
        return false;
    }
    for ring in poly.all_rings() {
        for (a, b) in crate::polygon::ring_edges(ring) {
            for (q1, q2) in line.segments() {
                if segments_intersect(a, b, q1, q2) {
                    return true;
                }
            }
        }
    }
    // No boundary crossing: the polyline is entirely inside or entirely
    // outside; one vertex decides which.
    line.points().first().is_some_and(|p| point_in_polygon(poly, p))
}

/// Exact polygon–polygon intersection: boundary crossing or containment of
/// either polygon in the other.
pub fn polygons_intersect(a: &Polygon, b: &Polygon) -> bool {
    if !a.mbr().intersects(&b.mbr()) {
        return false;
    }
    for ring_a in a.all_rings() {
        for (p1, p2) in crate::polygon::ring_edges(ring_a) {
            for ring_b in b.all_rings() {
                for (q1, q2) in crate::polygon::ring_edges(ring_b) {
                    if segments_intersect(p1, p2, q1, q2) {
                        return true;
                    }
                }
            }
        }
    }
    // No boundary crossing: either disjoint, or one contains the other.
    b.shell().first().is_some_and(|p| point_in_polygon(a, p))
        || a.shell().first().is_some_and(|p| point_in_polygon(b, p))
}

/// Exact point–polyline intersection (the point lies on the polyline).
pub fn point_on_linestring(line: &LineString, p: &Point) -> bool {
    use crate::predicates::{on_segment, orientation, Orientation};
    line.segments()
        .any(|(a, b)| orientation(a, b, p) == Orientation::Collinear && on_segment(a, b, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    fn ls(coords: &[(f64, f64)]) -> LineString {
        LineString::new(pts(coords))
    }

    #[test]
    fn crossing_polylines() {
        let a = ls(&[(0.0, 0.0), (2.0, 2.0)]);
        let b = ls(&[(0.0, 2.0), (2.0, 0.0)]);
        assert!(linestrings_intersect(&a, &b));
        assert!(linestrings_intersect(&b, &a), "symmetric");
    }

    #[test]
    fn parallel_polylines_disjoint() {
        let a = ls(&[(0.0, 0.0), (2.0, 0.0)]);
        let b = ls(&[(0.0, 1.0), (2.0, 1.0)]);
        assert!(!linestrings_intersect(&a, &b));
    }

    #[test]
    fn mbr_overlap_but_no_exact_intersection() {
        // The classic false positive that refinement must remove: MBRs
        // overlap, geometries do not touch.
        let a = ls(&[(0.0, 0.0), (1.0, 1.0)]);
        let b = ls(&[(0.0, 0.9), (0.05, 1.0)]);
        assert!(a.mbr().intersects(&b.mbr()));
        assert!(!linestrings_intersect(&a, &b));
    }

    #[test]
    fn touching_endpoints_intersect() {
        let a = ls(&[(0.0, 0.0), (1.0, 1.0)]);
        let b = ls(&[(1.0, 1.0), (2.0, 0.0)]);
        assert!(linestrings_intersect(&a, &b));
    }

    #[test]
    fn multi_segment_crossing_mid_way() {
        let road = ls(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let river = ls(&[(2.5, -1.0), (2.5, 1.0)]);
        assert!(linestrings_intersect(&road, &river));
    }

    #[test]
    fn polygon_crossed_by_linestring() {
        let sq = Polygon::new(pts(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]));
        assert!(polygon_intersects_linestring(&sq, &ls(&[(-1.0, 1.0), (3.0, 1.0)])));
    }

    #[test]
    fn polygon_containing_linestring() {
        let sq = Polygon::new(pts(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]));
        assert!(polygon_intersects_linestring(&sq, &ls(&[(1.0, 1.0), (2.0, 2.0)])));
    }

    #[test]
    fn polygon_disjoint_linestring() {
        let sq = Polygon::new(pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]));
        assert!(!polygon_intersects_linestring(&sq, &ls(&[(2.0, 2.0), (3.0, 3.0)])));
    }

    #[test]
    fn overlapping_polygons() {
        let a = Polygon::new(pts(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]));
        let b = Polygon::new(pts(&[(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0)]));
        assert!(polygons_intersect(&a, &b));
        assert!(polygons_intersect(&b, &a));
    }

    #[test]
    fn nested_polygons_intersect() {
        let outer = Polygon::new(pts(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]));
        let inner = Polygon::new(pts(&[(4.0, 4.0), (6.0, 4.0), (6.0, 6.0), (4.0, 6.0)]));
        assert!(polygons_intersect(&outer, &inner));
        assert!(polygons_intersect(&inner, &outer));
    }

    #[test]
    fn disjoint_polygons() {
        let a = Polygon::new(pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]));
        let b = Polygon::new(pts(&[(5.0, 5.0), (6.0, 5.0), (6.0, 6.0), (5.0, 6.0)]));
        assert!(!polygons_intersect(&a, &b));
    }

    #[test]
    fn point_on_linestring_detection() {
        let l = ls(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0)]);
        assert!(point_on_linestring(&l, &Point::new(1.0, 0.0)));
        assert!(point_on_linestring(&l, &Point::new(2.0, 1.0)));
        assert!(point_on_linestring(&l, &Point::new(2.0, 2.0)), "endpoint");
        assert!(!point_on_linestring(&l, &Point::new(1.0, 1.0)));
    }
}
