//! Clipping geometry to a rectangle (Liang–Barsky / Sutherland–Hodgman).
//!
//! Partitioned spatial systems sometimes *clip* geometry at partition
//! boundaries instead of duplicating whole records (SpatialHadoop supports
//! both). Clipping is also what the duplicate-avoidance literature calls
//! "fragment" replication. Provided here for completeness and used by the
//! data-profiling tools to measure how much volume clipping would save.

use crate::linestring::LineString;
use crate::mbr::Mbr;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::predicates::approx_zero;

/// Clips the segment `a..b` to `rect` (Liang–Barsky). Returns the clipped
/// endpoints, or `None` when the segment misses the rectangle entirely.
pub fn clip_segment(a: &Point, b: &Point, rect: &Mbr) -> Option<(Point, Point)> {
    let (dx, dy) = (b.x - a.x, b.y - a.y);
    let mut t0 = 0.0f64;
    let mut t1 = 1.0f64;
    // p = direction component against each boundary, q = distance inside.
    let checks = [
        (-dx, a.x - rect.min_x),
        (dx, rect.max_x - a.x),
        (-dy, a.y - rect.min_y),
        (dy, rect.max_y - a.y),
    ];
    for (p, q) in checks {
        if approx_zero(p) {
            if q < 0.0 {
                return None; // parallel and outside
            }
        } else {
            let r = q / p;
            if p < 0.0 {
                if r > t1 {
                    return None;
                }
                if r > t0 {
                    t0 = r;
                }
            } else {
                if r < t0 {
                    return None;
                }
                if r < t1 {
                    t1 = r;
                }
            }
        }
    }
    Some((Point::new(a.x + t0 * dx, a.y + t0 * dy), Point::new(a.x + t1 * dx, a.y + t1 * dy)))
}

/// Clips a polyline to a rectangle, returning the surviving pieces (a
/// polyline crossing in and out of the window yields several fragments).
pub fn clip_linestring(line: &LineString, rect: &Mbr) -> Vec<LineString> {
    let mut out: Vec<LineString> = Vec::new();
    let mut current: Vec<Point> = Vec::new();
    for (a, b) in line.segments() {
        match clip_segment(a, b, rect) {
            Some((ca, cb)) => {
                if approx_zero(ca.distance(&cb)) {
                    continue; // grazing contact, no extent
                }
                match current.last() {
                    Some(last) if last.distance(&ca) < 1e-12 => current.push(cb),
                    _ => {
                        if current.len() >= 2 {
                            out.push(LineString::new(std::mem::take(&mut current)));
                        }
                        current.clear();
                        current.push(ca);
                        current.push(cb);
                    }
                }
            }
            None => {
                if current.len() >= 2 {
                    out.push(LineString::new(std::mem::take(&mut current)));
                }
                current.clear();
            }
        }
    }
    if current.len() >= 2 {
        out.push(LineString::new(current));
    }
    out
}

/// Clips a polygon's shell to a rectangle (Sutherland–Hodgman). Holes are
/// dropped — partition-fragment use-cases only need the outer coverage.
/// Returns `None` when the intersection is empty or degenerate.
pub fn clip_polygon(poly: &Polygon, rect: &Mbr) -> Option<Polygon> {
    let mut ring: Vec<Point> = poly.shell().to_vec();
    // Clip successively against each half-plane of the rectangle.
    for side in 0..4 {
        if ring.len() < 3 {
            return None;
        }
        let inside = |p: &Point| match side {
            0 => p.x >= rect.min_x,
            1 => p.x <= rect.max_x,
            2 => p.y >= rect.min_y,
            _ => p.y <= rect.max_y,
        };
        let intersect = |a: &Point, b: &Point| -> Point {
            match side {
                0 => lerp_x(a, b, rect.min_x),
                1 => lerp_x(a, b, rect.max_x),
                2 => lerp_y(a, b, rect.min_y),
                _ => lerp_y(a, b, rect.max_y),
            }
        };
        let mut next = Vec::with_capacity(ring.len() + 4);
        if let Some(&last) = ring.last() {
            let mut prev = last;
            for &cur in &ring {
                match (inside(&prev), inside(&cur)) {
                    (true, true) => next.push(cur),
                    (true, false) => next.push(intersect(&prev, &cur)),
                    (false, true) => {
                        next.push(intersect(&prev, &cur));
                        next.push(cur);
                    }
                    (false, false) => {}
                }
                prev = cur;
            }
        }
        ring = next;
        ring.dedup_by(|a, b| a.distance(b) < 1e-12);
    }
    if ring.len() < 3 {
        return None;
    }
    let poly = Polygon::try_with_holes(ring, Vec::new())?;
    if poly.area() <= 0.0 {
        None
    } else {
        Some(poly)
    }
}

fn lerp_x(a: &Point, b: &Point, x: f64) -> Point {
    let t = (x - a.x) / (b.x - a.x);
    Point::new(x, a.y + t * (b.y - a.y))
}

fn lerp_y(a: &Point, b: &Point, y: f64) -> Point {
    let t = (y - a.y) / (b.y - a.y);
    Point::new(a.x + t * (b.x - a.x), y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn unit() -> Mbr {
        Mbr::new(0.0, 0.0, 10.0, 10.0)
    }

    #[test]
    fn segment_fully_inside_is_unchanged() {
        let (a, b) = clip_segment(&p(1.0, 1.0), &p(9.0, 9.0), &unit()).unwrap();
        assert_eq!(a, p(1.0, 1.0));
        assert_eq!(b, p(9.0, 9.0));
    }

    #[test]
    fn segment_crossing_is_trimmed() {
        let (a, b) = clip_segment(&p(-5.0, 5.0), &p(15.0, 5.0), &unit()).unwrap();
        assert_eq!(a, p(0.0, 5.0));
        assert_eq!(b, p(10.0, 5.0));
    }

    #[test]
    fn segment_outside_is_rejected() {
        assert!(clip_segment(&p(-5.0, -5.0), &p(-1.0, -1.0), &unit()).is_none());
        assert!(clip_segment(&p(20.0, 0.0), &p(20.0, 10.0), &unit()).is_none());
    }

    #[test]
    fn diagonal_corner_cut() {
        let (a, b) = clip_segment(&p(-5.0, 5.0), &p(5.0, -5.0), &unit()).unwrap();
        assert!((a.x - 0.0).abs() < 1e-9 && (a.y - 0.0).abs() < 1e-9 || (b.x - 0.0).abs() < 1e-9);
        assert!(unit().contains_point(&a) && unit().contains_point(&b));
    }

    #[test]
    fn polyline_splits_into_fragments() {
        // Enters, exits, re-enters: two fragments.
        let line = LineString::new(vec![
            p(-5.0, 5.0),
            p(5.0, 5.0),
            p(15.0, 5.0),
            p(15.0, 2.0),
            p(5.0, 2.0),
        ]);
        let frags = clip_linestring(&line, &unit());
        assert_eq!(frags.len(), 2);
        for f in &frags {
            assert!(unit().contains(&f.mbr()));
        }
    }

    #[test]
    fn polyline_outside_yields_nothing() {
        let line = LineString::new(vec![p(20.0, 20.0), p(30.0, 30.0)]);
        assert!(clip_linestring(&line, &unit()).is_empty());
    }

    #[test]
    fn polygon_clip_halves_a_square() {
        let sq = Polygon::new(vec![p(-5.0, 0.0), p(5.0, 0.0), p(5.0, 10.0), p(-5.0, 10.0)]);
        let clipped = clip_polygon(&sq, &unit()).unwrap();
        assert!((clipped.area() - 50.0).abs() < 1e-9);
        assert!(unit().contains(&clipped.mbr()));
    }

    #[test]
    fn polygon_inside_is_unchanged_in_area() {
        let sq = Polygon::new(vec![p(2.0, 2.0), p(4.0, 2.0), p(4.0, 4.0), p(2.0, 4.0)]);
        let clipped = clip_polygon(&sq, &unit()).unwrap();
        assert!((clipped.area() - sq.area()).abs() < 1e-9);
    }

    #[test]
    fn polygon_outside_is_none() {
        let sq = Polygon::new(vec![p(20.0, 20.0), p(24.0, 20.0), p(24.0, 24.0), p(20.0, 24.0)]);
        assert!(clip_polygon(&sq, &unit()).is_none());
    }

    #[test]
    fn polygon_corner_overlap() {
        // Square overlapping only the window's corner: clipped area is the
        // overlap rectangle.
        let sq = Polygon::new(vec![p(8.0, 8.0), p(14.0, 8.0), p(14.0, 14.0), p(8.0, 14.0)]);
        let clipped = clip_polygon(&sq, &unit()).unwrap();
        assert!((clipped.area() - 4.0).abs() < 1e-9);
    }
}
