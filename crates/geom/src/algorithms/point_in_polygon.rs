//! Point-in-polygon test (ray casting with boundary handling).

use crate::point::Point;
use crate::polygon::Polygon;
use crate::predicates::{on_segment, orientation, Orientation};

/// Where a point lies relative to a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RingSide {
    Inside,
    Outside,
    OnBoundary,
}

/// Crossing-number test of `p` against an unclosed ring.
fn point_in_ring(ring: &[Point], p: &Point) -> RingSide {
    let mut inside = false;
    for (a, b) in crate::polygon::ring_edges(ring) {
        // Boundary check first: collinear with and within the edge's extent.
        if orientation(a, b, p) == Orientation::Collinear && on_segment(a, b, p) {
            return RingSide::OnBoundary;
        }
        // Standard ray-casting parity rule: count edges crossing the
        // horizontal ray to +infinity. The half-open test (one endpoint
        // strictly above, the other not) handles vertices without double
        // counting.
        if (a.y > p.y) != (b.y > p.y) {
            let x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
            if x_cross > p.x {
                inside = !inside;
            }
        }
    }
    if inside {
        RingSide::Inside
    } else {
        RingSide::Outside
    }
}

/// Whether `p` lies inside `poly` (boundary counts as inside, holes count
/// as outside, hole boundaries count as inside).
///
/// This is the refinement predicate of the paper's first experiment:
/// assigning each taxi pickup to the census block containing it.
pub fn point_in_polygon(poly: &Polygon, p: &Point) -> bool {
    match point_in_ring(poly.shell(), p) {
        RingSide::Outside => false,
        RingSide::OnBoundary => true,
        RingSide::Inside => {
            for hole in poly.holes() {
                match point_in_ring(hole, p) {
                    RingSide::Inside => return false,
                    RingSide::OnBoundary => return true,
                    RingSide::Outside => {}
                }
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    fn unit_square() -> Polygon {
        Polygon::new(pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]))
    }

    #[test]
    fn center_is_inside() {
        assert!(point_in_polygon(&unit_square(), &Point::new(0.5, 0.5)));
    }

    #[test]
    fn far_point_is_outside() {
        assert!(!point_in_polygon(&unit_square(), &Point::new(5.0, 5.0)));
        assert!(!point_in_polygon(&unit_square(), &Point::new(-0.1, 0.5)));
    }

    #[test]
    fn boundary_counts_as_inside() {
        let sq = unit_square();
        assert!(point_in_polygon(&sq, &Point::new(0.0, 0.5)), "edge");
        assert!(point_in_polygon(&sq, &Point::new(1.0, 1.0)), "vertex");
        assert!(point_in_polygon(&sq, &Point::new(0.5, 0.0)), "bottom edge");
    }

    #[test]
    fn point_level_with_vertex_is_not_double_counted() {
        // Triangle with an apex: a horizontal ray through the apex's y must
        // not flip parity twice.
        let tri = Polygon::new(pts(&[(0.0, 0.0), (4.0, 0.0), (2.0, 2.0)]));
        assert!(!point_in_polygon(&tri, &Point::new(5.0, 2.0)), "right of apex, level with it");
        assert!(point_in_polygon(&tri, &Point::new(2.0, 1.0)));
    }

    #[test]
    fn hole_excludes_interior() {
        let donut = Polygon::with_holes(
            pts(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]),
            vec![pts(&[(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0)])],
        );
        assert!(!point_in_polygon(&donut, &Point::new(2.0, 2.0)), "inside hole");
        assert!(point_in_polygon(&donut, &Point::new(0.5, 0.5)), "between shell and hole");
        assert!(point_in_polygon(&donut, &Point::new(1.0, 2.0)), "on hole boundary");
    }

    #[test]
    fn concave_polygon() {
        // A "U" shape: the notch is outside.
        let u = Polygon::new(pts(&[
            (0.0, 0.0),
            (5.0, 0.0),
            (5.0, 5.0),
            (4.0, 5.0),
            (4.0, 1.0),
            (1.0, 1.0),
            (1.0, 5.0),
            (0.0, 5.0),
        ]));
        assert!(!point_in_polygon(&u, &Point::new(2.5, 3.0)), "inside the notch");
        assert!(point_in_polygon(&u, &Point::new(0.5, 3.0)), "left arm");
        assert!(point_in_polygon(&u, &Point::new(4.5, 3.0)), "right arm");
        assert!(point_in_polygon(&u, &Point::new(2.5, 0.5)), "base");
    }

    #[test]
    fn clockwise_ring_gives_same_answer() {
        let ccw = unit_square();
        let cw = Polygon::new(pts(&[(0.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, 0.0)]));
        for &(x, y) in &[(0.5, 0.5), (2.0, 0.5), (0.0, 0.0), (-1.0, -1.0)] {
            let p = Point::new(x, y);
            assert_eq!(point_in_polygon(&ccw, &p), point_in_polygon(&cw, &p));
        }
    }
}
