//! Spatial relationship algorithms: the *refinement* phase primitives.
//!
//! In the paper's terminology, a spatial join first *filters* candidate
//! pairs by MBR intersection, then *refines* using exact geometry. These
//! modules implement the refinement tests for every geometry pairing that
//! the two experiments exercise (point-in-polygon for `taxi × nycb`,
//! polyline-polyline intersection for `edges × linearwater`), plus distance
//! computation used by within-distance joins.

pub mod clip;
pub mod convex_hull;
pub mod distance;
pub mod intersects;
pub mod point_in_polygon;
pub mod simplify;

pub use clip::{clip_linestring, clip_polygon, clip_segment};
pub use convex_hull::{convex_hull, convex_hull_ring};
pub use distance::{point_segment_distance, point_to_linestring_distance};
pub use intersects::{linestrings_intersect, polygon_intersects_linestring, polygons_intersect};
pub use point_in_polygon::point_in_polygon;
pub use simplify::simplify;
