//! Polyline simplification (Ramer–Douglas–Peucker).
//!
//! Spatial pipelines routinely simplify dense geometry before distribution
//! to cut serialized volume; the `sjc-data` profiling tools use this to
//! report how compressible the synthetic TIGER polylines are.

use crate::algorithms::distance::point_segment_distance;
use crate::linestring::LineString;
use crate::point::Point;

/// Ramer–Douglas–Peucker simplification with distance tolerance `epsilon`.
///
/// Endpoints are always kept; the result is a valid [`LineString`] with at
/// least two vertices.
pub fn simplify(line: &LineString, epsilon: f64) -> LineString {
    assert!(epsilon >= 0.0, "tolerance must be non-negative");
    let pts = line.points();
    let mut keep = vec![false; pts.len()];
    // A LineString always has >= 2 vertices, so first/last exist.
    if let Some(first) = keep.first_mut() {
        *first = true;
    }
    if let Some(last) = keep.last_mut() {
        *last = true;
    }
    rdp(pts, 0, pts.len().saturating_sub(1), epsilon, &mut keep);
    let kept: Vec<Point> = pts.iter().zip(&keep).filter(|(_, &k)| k).map(|(p, _)| *p).collect();
    LineString::new(kept)
}

fn rdp(pts: &[Point], first: usize, last: usize, epsilon: f64, keep: &mut [bool]) {
    if last <= first + 1 {
        return;
    }
    let (Some(pf), Some(pl)) = (pts.get(first), pts.get(last)) else {
        return;
    };
    let (mut max_d, mut max_i) = (0.0f64, first);
    for (i, p) in pts.iter().enumerate().take(last).skip(first + 1) {
        let d = point_segment_distance(p, pf, pl);
        if d > max_d {
            max_d = d;
            max_i = i;
        }
    }
    if max_d > epsilon {
        if let Some(k) = keep.get_mut(max_i) {
            *k = true;
        }
        rdp(pts, first, max_i, epsilon, keep);
        rdp(pts, max_i, last, epsilon, keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(coords: &[(f64, f64)]) -> LineString {
        LineString::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let l = ls(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0), (4.0, 0.0)]);
        let s = simplify(&l, 0.01);
        assert_eq!(s.num_points(), 2);
        assert_eq!(s.points()[0], Point::new(0.0, 0.0));
        assert_eq!(s.points()[1], Point::new(4.0, 0.0));
    }

    #[test]
    fn significant_corners_survive() {
        let l = ls(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (4.0, 2.0)]);
        let s = simplify(&l, 0.1);
        assert_eq!(s.num_points(), 4, "right angles are not noise");
    }

    #[test]
    fn tolerance_controls_aggressiveness() {
        // Zig-zag with amplitude 0.5.
        let l = ls(&[(0.0, 0.0), (1.0, 0.5), (2.0, 0.0), (3.0, 0.5), (4.0, 0.0)]);
        let loose = simplify(&l, 1.0);
        let tight = simplify(&l, 0.1);
        assert_eq!(loose.num_points(), 2, "amplitude below tolerance vanishes");
        assert_eq!(tight.num_points(), 5, "amplitude above tolerance survives");
    }

    #[test]
    fn endpoints_always_kept() {
        let l = ls(&[(0.0, 0.0), (5.0, 5.0)]);
        let s = simplify(&l, 100.0);
        assert_eq!(s.num_points(), 2);
    }

    #[test]
    fn simplified_stays_within_tolerance() {
        // Every dropped vertex must lie within epsilon of the simplified line.
        let l = ls(&[
            (0.0, 0.0),
            (1.0, 0.2),
            (2.0, -0.1),
            (3.0, 0.15),
            (4.0, 0.0),
            (5.0, 3.0),
            (6.0, 3.1),
            (7.0, 3.0),
        ]);
        let eps = 0.25;
        let s = simplify(&l, eps);
        for p in l.points() {
            let d = crate::algorithms::distance::point_to_linestring_distance(p, &s);
            assert!(d <= eps + 1e-9, "vertex {p:?} strayed {d} from the simplification");
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tolerance_rejected() {
        let l = ls(&[(0.0, 0.0), (1.0, 1.0)]);
        let _ = simplify(&l, -1.0);
    }
}
