//! Distance computation: point–segment and point–polyline.
//!
//! The paper's motivating example ("matching taxi pickup/drop-off locations
//! with road segments through point-to-nearest-polyline distance
//! computation") is a within-distance join whose refinement predicate is
//! implemented here.

use crate::linestring::LineString;
use crate::point::Point;
use crate::predicates::approx_zero;

/// Euclidean distance from `p` to the closed segment `a..=b`.
pub fn point_segment_distance(p: &Point, a: &Point, b: &Point) -> f64 {
    point_segment_distance_sq(p, a, b).sqrt()
}

/// Squared distance from `p` to segment `a..=b` (for comparisons).
pub fn point_segment_distance_sq(p: &Point, a: &Point, b: &Point) -> f64 {
    let ab = (b.x - a.x, b.y - a.y);
    let len_sq = ab.0 * ab.0 + ab.1 * ab.1;
    if approx_zero(len_sq) {
        return p.distance_sq(a); // degenerate segment
    }
    // Projection parameter clamped to the segment extent.
    let t = (((p.x - a.x) * ab.0 + (p.y - a.y) * ab.1) / len_sq).clamp(0.0, 1.0);
    let proj = Point::new(a.x + t * ab.0, a.y + t * ab.1);
    p.distance_sq(&proj)
}

/// Distance from `p` to the nearest point of `line`.
pub fn point_to_linestring_distance(p: &Point, line: &LineString) -> f64 {
    line.segments()
        .map(|(a, b)| point_segment_distance_sq(p, a, b))
        .fold(f64::INFINITY, f64::min)
        .sqrt()
}

/// Whether `p` lies within `d` of `line` (the within-distance predicate).
pub fn point_within_distance(p: &Point, line: &LineString, d: f64) -> bool {
    let d_sq = d * d;
    line.segments().any(|(a, b)| point_segment_distance_sq(p, a, b) <= d_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(coords: &[(f64, f64)]) -> LineString {
        LineString::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    #[test]
    fn perpendicular_foot_inside_segment() {
        let d = point_segment_distance(
            &Point::new(1.0, 1.0),
            &Point::new(0.0, 0.0),
            &Point::new(2.0, 0.0),
        );
        assert_eq!(d, 1.0);
    }

    #[test]
    fn foot_beyond_endpoint_clamps() {
        let d = point_segment_distance(
            &Point::new(5.0, 0.0),
            &Point::new(0.0, 0.0),
            &Point::new(2.0, 0.0),
        );
        assert_eq!(d, 3.0);
        let d2 = point_segment_distance(
            &Point::new(-3.0, 4.0),
            &Point::new(0.0, 0.0),
            &Point::new(2.0, 0.0),
        );
        assert_eq!(d2, 5.0);
    }

    #[test]
    fn degenerate_segment_is_point_distance() {
        let a = Point::new(1.0, 1.0);
        assert_eq!(point_segment_distance(&Point::new(4.0, 5.0), &a, &a), 5.0);
    }

    #[test]
    fn point_on_segment_distance_zero() {
        let d = point_segment_distance(
            &Point::new(1.0, 0.0),
            &Point::new(0.0, 0.0),
            &Point::new(2.0, 0.0),
        );
        assert_eq!(d, 0.0);
    }

    #[test]
    fn polyline_distance_takes_minimum() {
        let l = ls(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)]);
        let d = point_to_linestring_distance(&Point::new(11.0, 5.0), &l);
        assert_eq!(d, 1.0, "nearest is the vertical leg");
    }

    #[test]
    fn within_distance_predicate() {
        let road = ls(&[(0.0, 0.0), (10.0, 0.0)]);
        assert!(point_within_distance(&Point::new(5.0, 0.5), &road, 0.5));
        assert!(!point_within_distance(&Point::new(5.0, 0.51), &road, 0.5));
    }

    #[test]
    fn distance_matches_explicit_minimum() {
        let l = ls(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0)]);
        let p = Point::new(2.0, 2.0);
        let explicit = l
            .segments()
            .map(|(a, b)| point_segment_distance(&p, a, b))
            .fold(f64::INFINITY, f64::min);
        assert!((point_to_linestring_distance(&p, &l) - explicit).abs() < 1e-12);
    }
}
