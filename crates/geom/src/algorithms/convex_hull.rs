//! Convex hull (Andrew's monotone chain).
//!
//! Used by data-profiling tooling (hull-based extent estimates) and
//! available to downstream users of the geometry engine; JTS exposes the
//! same operation.

use crate::point::Point;
use crate::polygon::Polygon;
use crate::predicates::cross;

/// Computes the convex hull of a point set as a counter-clockwise ring.
///
/// Returns `None` for fewer than 3 non-collinear points. Duplicates are
/// tolerated.
pub fn convex_hull(points: &[Point]) -> Option<Polygon> {
    let ring = convex_hull_ring(points)?;
    Some(Polygon::new(ring))
}

/// The hull ring itself (counter-clockwise, no repeated closing vertex).
pub fn convex_hull_ring(points: &[Point]) -> Option<Vec<Point>> {
    if points.len() < 3 {
        return None;
    }
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    pts.dedup();
    if pts.len() < 3 {
        return None;
    }

    // Last two hull points make a non-left turn with `p`?
    fn turns_right(hull: &[Point], p: &Point) -> bool {
        matches!(hull, [.., a, b] if cross(a, b, p) <= 0.0)
    }

    let mut hull: Vec<Point> = Vec::with_capacity(pts.len() * 2);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && turns_right(&hull, &p) {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len && turns_right(&hull, &p) {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point repeats the first
    if hull.len() < 3 {
        return None; // all collinear
    }
    Some(hull)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::point_in_polygon;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 4.0),
            p(0.0, 4.0),
            p(2.0, 2.0), // interior
            p(1.0, 3.0), // interior
        ];
        let hull = convex_hull(&pts).unwrap();
        assert_eq!(hull.shell().len(), 4, "interior points dropped");
        assert_eq!(hull.area(), 16.0);
        assert!(hull.signed_area() > 0.0, "counter-clockwise");
    }

    #[test]
    fn hull_contains_all_inputs() {
        let pts: Vec<Point> =
            (0..50).map(|i| p((i * 37 % 23) as f64, (i * 53 % 19) as f64)).collect();
        let hull = convex_hull(&pts).unwrap();
        for q in &pts {
            assert!(point_in_polygon(&hull, q), "{q:?} escaped the hull");
        }
    }

    #[test]
    fn collinear_points_have_no_hull() {
        let pts: Vec<Point> = (0..10).map(|i| p(i as f64, i as f64 * 2.0)).collect();
        assert!(convex_hull(&pts).is_none());
    }

    #[test]
    fn too_few_points() {
        assert!(convex_hull(&[p(0.0, 0.0), p(1.0, 1.0)]).is_none());
        assert!(convex_hull(&[]).is_none());
    }

    #[test]
    fn duplicates_are_tolerated() {
        let pts = vec![p(0.0, 0.0), p(0.0, 0.0), p(1.0, 0.0), p(1.0, 0.0), p(0.5, 1.0)];
        let hull = convex_hull(&pts).unwrap();
        assert_eq!(hull.shell().len(), 3);
    }
}
