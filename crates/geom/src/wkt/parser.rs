//! Recursive-descent WKT parser.

use std::fmt;

use crate::{Geometry, LineString, Point, Polygon};

/// Errors produced while parsing WKT text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WktError {
    /// Input ended before the geometry was complete.
    UnexpectedEnd,
    /// An unknown geometry tag (only POINT/LINESTRING/POLYGON are supported).
    UnknownTag(String),
    /// A coordinate failed to parse as `f64`.
    BadNumber(String),
    /// Structural problem (missing parenthesis, wrong arity, trailing text).
    Malformed(String),
    /// `EMPTY` geometries carry no coordinates and are rejected: the
    /// evaluated datasets never contain them and every downstream algorithm
    /// requires an MBR.
    Empty,
}

impl fmt::Display for WktError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WktError::UnexpectedEnd => write!(f, "unexpected end of WKT input"),
            WktError::UnknownTag(t) => write!(f, "unknown WKT geometry tag: {t:?}"),
            WktError::BadNumber(s) => write!(f, "invalid coordinate literal: {s:?}"),
            WktError::Malformed(m) => write!(f, "malformed WKT: {m}"),
            WktError::Empty => write!(f, "EMPTY geometries are not supported"),
        }
    }
}

impl std::error::Error for WktError {}

struct Cursor<'a> {
    rest: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor { rest: s }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn eof(&mut self) -> bool {
        self.skip_ws();
        self.rest.is_empty()
    }

    /// Consumes an ASCII identifier (geometry tag or EMPTY keyword).
    fn ident(&mut self) -> Result<String, WktError> {
        self.skip_ws();
        let end = self.rest.find(|c: char| !c.is_ascii_alphabetic()).unwrap_or(self.rest.len());
        if end == 0 {
            return Err(if self.rest.is_empty() {
                WktError::UnexpectedEnd
            } else {
                WktError::Malformed(format!("expected identifier at {:?}", head(self.rest)))
            });
        }
        let (tok, rest) = self.rest.split_at(end);
        self.rest = rest;
        Ok(tok.to_ascii_uppercase())
    }

    fn expect_char(&mut self, c: char) -> Result<(), WktError> {
        self.skip_ws();
        let mut chars = self.rest.chars();
        match chars.next() {
            Some(found) if found == c => {
                self.rest = chars.as_str();
                Ok(())
            }
            Some(_) => Err(WktError::Malformed(format!("expected {c:?} at {:?}", head(self.rest)))),
            None => Err(WktError::UnexpectedEnd),
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest.chars().next()
    }

    fn number(&mut self) -> Result<f64, WktError> {
        self.skip_ws();
        let end = self
            .rest
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
            .unwrap_or(self.rest.len());
        if end == 0 {
            return Err(if self.rest.is_empty() {
                WktError::UnexpectedEnd
            } else {
                WktError::BadNumber(head(self.rest).to_string())
            });
        }
        let (tok, rest) = self.rest.split_at(end);
        self.rest = rest;
        tok.parse::<f64>().map_err(|_| WktError::BadNumber(tok.to_string()))
    }

    /// `x y` coordinate pair.
    fn coord(&mut self) -> Result<Point, WktError> {
        let x = self.number()?;
        let y = self.number()?;
        Ok(Point::new(x, y))
    }

    /// `( x y, x y, ... )`
    fn coord_list(&mut self) -> Result<Vec<Point>, WktError> {
        self.expect_char('(')?;
        let mut out = vec![self.coord()?];
        while self.peek() == Some(',') {
            self.expect_char(',')?;
            out.push(self.coord()?);
        }
        self.expect_char(')')?;
        Ok(out)
    }

    /// `( (ring), (ring), ... )`
    fn ring_list(&mut self) -> Result<Vec<Vec<Point>>, WktError> {
        self.expect_char('(')?;
        let mut out = vec![self.coord_list()?];
        while self.peek() == Some(',') {
            self.expect_char(',')?;
            out.push(self.coord_list()?);
        }
        self.expect_char(')')?;
        Ok(out)
    }
}

fn head(s: &str) -> &str {
    s.get(..s.len().min(16)).unwrap_or(s)
}

fn polygon_from_rings(mut rings: Vec<Vec<Point>>) -> Result<Polygon, WktError> {
    if rings.is_empty() {
        return Err(WktError::Malformed("POLYGON needs >= 1 ring".into()));
    }
    let shell = rings.remove(0);
    Polygon::try_with_holes(shell, rings)
        .ok_or_else(|| WktError::Malformed("POLYGON ring needs >= 3 vertices".into()))
}

/// Parses one WKT geometry from `input`. Trailing non-whitespace is an error.
pub fn parse_wkt(input: &str) -> Result<Geometry, WktError> {
    let mut cur = Cursor::new(input);
    let tag = cur.ident()?;
    cur.skip_ws();
    if cur.rest.to_ascii_uppercase().starts_with("EMPTY") {
        return Err(WktError::Empty);
    }
    let geom = match tag.as_str() {
        "POINT" => {
            cur.expect_char('(')?;
            let p = cur.coord()?;
            cur.expect_char(')')?;
            Geometry::Point(p)
        }
        "LINESTRING" => {
            let pts = cur.coord_list()?;
            let ls = LineString::try_new(pts)
                .ok_or_else(|| WktError::Malformed("LINESTRING needs >= 2 vertices".into()))?;
            Geometry::LineString(ls)
        }
        "POLYGON" => {
            let rings = cur.ring_list()?;
            Geometry::Polygon(polygon_from_rings(rings)?)
        }
        "MULTIPOINT" => {
            cur.expect_char('(')?;
            let mut pts = Vec::new();
            loop {
                // Both `(1 2)` and legacy bare `1 2` member syntax.
                if cur.peek() == Some('(') {
                    cur.expect_char('(')?;
                    pts.push(cur.coord()?);
                    cur.expect_char(')')?;
                } else {
                    pts.push(cur.coord()?);
                }
                if cur.peek() == Some(',') {
                    cur.expect_char(',')?;
                } else {
                    break;
                }
            }
            cur.expect_char(')')?;
            Geometry::MultiPoint(pts)
        }
        "MULTILINESTRING" => {
            let lists = cur.ring_list()?;
            let mut lines = Vec::with_capacity(lists.len());
            for pts in lists {
                lines.push(LineString::try_new(pts).ok_or_else(|| {
                    WktError::Malformed("MULTILINESTRING member needs >= 2 vertices".into())
                })?);
            }
            Geometry::MultiLineString(lines)
        }
        "MULTIPOLYGON" => {
            cur.expect_char('(')?;
            let mut polys = Vec::new();
            loop {
                let rings = cur.ring_list()?;
                polys.push(polygon_from_rings(rings)?);
                if cur.peek() == Some(',') {
                    cur.expect_char(',')?;
                } else {
                    break;
                }
            }
            cur.expect_char(')')?;
            Geometry::MultiPolygon(polys)
        }
        other => return Err(WktError::UnknownTag(other.to_string())),
    };
    if !cur.eof() {
        return Err(WktError::Malformed(format!("trailing input: {:?}", head(cur.rest))));
    }
    Ok(geom)
}
