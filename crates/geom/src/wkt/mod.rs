//! Well-Known Text (WKT) reader and writer.
//!
//! All three evaluated systems exchange geometry as WKT inside TSV lines:
//! HadoopGIS pipes WKT strings through Hadoop Streaming on *every* MR stage
//! (the paper identifies this repeated parsing as a major overhead), while
//! SpatialHadoop/SpatialSpark parse WKT once at load time. The parser here is
//! a hand-rolled recursive-descent tokenizer — no dependencies — supporting
//! `POINT`, `LINESTRING` and `POLYGON` (with holes), plus `EMPTY` detection.

mod parser;
mod writer;

pub use parser::{parse_wkt, WktError};
pub use writer::to_wkt;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Geometry, LineString, Point, Polygon};

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn round_trip_point() {
        let g = Geometry::Point(Point::new(1.5, -2.25));
        let text = to_wkt(&g);
        assert_eq!(text, "POINT (1.5 -2.25)");
        assert_eq!(parse_wkt(&text).unwrap(), g);
    }

    #[test]
    fn round_trip_linestring() {
        let g = Geometry::LineString(LineString::new(pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)])));
        let text = to_wkt(&g);
        assert_eq!(text, "LINESTRING (0 0, 1 1, 2 0.5)");
        assert_eq!(parse_wkt(&text).unwrap(), g);
    }

    #[test]
    fn round_trip_polygon_with_hole() {
        let g = Geometry::Polygon(Polygon::with_holes(
            pts(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]),
            vec![pts(&[(1.0, 1.0), (2.0, 1.0), (2.0, 2.0), (1.0, 2.0)])],
        ));
        let text = to_wkt(&g);
        assert!(text.starts_with("POLYGON (("));
        assert_eq!(parse_wkt(&text).unwrap(), g);
    }

    #[test]
    fn parser_closes_polygon_rings() {
        // WKT polygons are written closed; our internal representation is
        // unclosed — parsing must normalize.
        let g = parse_wkt("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))").unwrap();
        match g {
            Geometry::Polygon(p) => assert_eq!(p.shell().len(), 4),
            other => panic!("expected polygon, got {}", other.kind()),
        }
    }

    #[test]
    fn whitespace_and_case_tolerance() {
        assert!(parse_wkt("  point( 3   4 ) ").is_ok());
        assert!(parse_wkt("LineString(0 0,1 1)").is_ok());
    }

    #[test]
    fn scientific_notation_coordinates() {
        let g = parse_wkt("POINT (1e3 -2.5e-2)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(1000.0, -0.025)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(parse_wkt(""), Err(WktError::UnexpectedEnd)));
        assert!(parse_wkt("CIRCLE (0 0, 1)").is_err());
        assert!(parse_wkt("POINT (1)").is_err());
        assert!(parse_wkt("POINT (a b)").is_err());
        assert!(parse_wkt("LINESTRING (0 0)").is_err(), "single-vertex linestring");
        assert!(parse_wkt("POLYGON ((0 0, 1 1))").is_err(), "two-vertex ring");
        assert!(parse_wkt("POINT (1 2").is_err(), "unbalanced paren");
        assert!(parse_wkt("POINT (1 2) trailing").is_err(), "trailing garbage");
    }

    #[test]
    fn empty_geometries_rejected() {
        assert!(parse_wkt("POINT EMPTY").is_err());
        assert!(parse_wkt("POLYGON EMPTY").is_err());
    }
}
