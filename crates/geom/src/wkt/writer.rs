//! WKT serialization.

use std::fmt::Write as _;

use crate::point::Point;
use crate::Geometry;

/// Serializes a geometry to WKT. Coordinates print with Rust's shortest
/// round-trippable `f64` formatting, so `parse_wkt(to_wkt(g)) == g` exactly.
pub fn to_wkt(g: &Geometry) -> String {
    let mut out = String::with_capacity(g.wkt_size_estimate() as usize);
    match g {
        Geometry::Point(p) => {
            out.push_str("POINT (");
            write_coord(&mut out, p);
            out.push(')');
        }
        Geometry::LineString(l) => {
            out.push_str("LINESTRING ");
            write_coord_list(&mut out, l.points(), false);
        }
        Geometry::Polygon(poly) => {
            out.push_str("POLYGON ");
            write_polygon_body(&mut out, poly);
        }
        Geometry::MultiPoint(ps) => {
            out.push_str("MULTIPOINT (");
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('(');
                write_coord(&mut out, p);
                out.push(')');
            }
            out.push(')');
        }
        Geometry::MultiLineString(ls) => {
            out.push_str("MULTILINESTRING (");
            for (i, l) in ls.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_coord_list(&mut out, l.points(), false);
            }
            out.push(')');
        }
        Geometry::MultiPolygon(ps) => {
            out.push_str("MULTIPOLYGON (");
            for (i, poly) in ps.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_polygon_body(&mut out, poly);
            }
            out.push(')');
        }
    }
    out
}

/// Writes `((shell), (hole), ...)` — the parenthesized ring list shared by
/// POLYGON and each member of MULTIPOLYGON.
fn write_polygon_body(out: &mut String, poly: &crate::Polygon) {
    out.push('(');
    write_coord_list(out, poly.shell(), true);
    for hole in poly.holes() {
        out.push_str(", ");
        write_coord_list(out, hole, true);
    }
    out.push(')');
}

fn write_coord(out: &mut String, p: &Point) {
    // `{}` on f64 is the shortest representation that round-trips.
    let _ = write!(out, "{} {}", p.x, p.y);
}

/// Writes `(x y, x y, ...)`; when `close` is set, repeats the first vertex
/// at the end (WKT rings are explicitly closed).
fn write_coord_list(out: &mut String, pts: &[Point], close: bool) {
    out.push('(');
    for (i, p) in pts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_coord(out, p);
    }
    if close {
        if let Some(first) = pts.first() {
            out.push_str(", ");
            write_coord(out, first);
        }
    }
    out.push(')');
}
