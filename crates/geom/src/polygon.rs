//! Polygon type: an outer shell plus optional holes.

use crate::mbr::Mbr;
use crate::point::Point;
use crate::predicates::cross;

/// A simple polygon with an outer shell and zero or more holes.
///
/// Rings are stored *unclosed* internally (the closing vertex is implicit);
/// the constructor accepts either form. This models the census-block
/// (`nycb`) polygons of the paper's point-in-polygon experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    shell: Vec<Point>,
    holes: Vec<Vec<Point>>,
}

impl Polygon {
    /// Creates a polygon from an outer ring. Accepts closed or unclosed
    /// rings; panics when fewer than 3 distinct vertices remain.
    pub fn new(shell: Vec<Point>) -> Self {
        Polygon::with_holes(shell, Vec::new())
    }

    /// Creates a polygon with holes.
    pub fn with_holes(shell: Vec<Point>, holes: Vec<Vec<Point>>) -> Self {
        // sjc-lint: allow(no-panic-in-lib) — documented contract: this constructor panics on < 3 vertices; try_with_holes is the fallible API
        let shell = normalize_ring(shell).expect("polygon shell requires >= 3 vertices");
        let holes = holes
            .into_iter()
            // sjc-lint: allow(no-panic-in-lib) — documented contract: this constructor panics on < 3 vertices; try_with_holes is the fallible API
            .map(|h| normalize_ring(h).expect("polygon hole requires >= 3 vertices"))
            .collect();
        Polygon { shell, holes }
    }

    /// Fallible constructor used by the WKT parser.
    pub fn try_with_holes(shell: Vec<Point>, holes: Vec<Vec<Point>>) -> Option<Self> {
        let shell = normalize_ring(shell)?;
        let mut hs = Vec::with_capacity(holes.len());
        for h in holes {
            hs.push(normalize_ring(h)?);
        }
        Some(Polygon { shell, holes: hs })
    }

    /// The outer ring (unclosed).
    pub fn shell(&self) -> &[Point] {
        &self.shell
    }

    /// The holes (unclosed rings).
    pub fn holes(&self) -> &[Vec<Point>] {
        &self.holes
    }

    /// Tight MBR of the shell (holes cannot extend beyond it).
    pub fn mbr(&self) -> Mbr {
        Mbr::from_points(self.shell.iter())
    }

    /// Signed area of the shell (positive = counter-clockwise winding).
    pub fn signed_area(&self) -> f64 {
        ring_signed_area(&self.shell)
    }

    /// Area of the polygon: |shell| minus |holes|.
    pub fn area(&self) -> f64 {
        let shell = ring_signed_area(&self.shell).abs();
        let holes: f64 = self.holes.iter().map(|h| ring_signed_area(h).abs()).sum();
        (shell - holes).max(0.0)
    }

    /// Perimeter of the shell ring (closing edge included).
    pub fn perimeter(&self) -> f64 {
        ring_perimeter(&self.shell)
    }

    /// Iterator over the closed edge list of the shell, including the
    /// closing edge `last -> first`.
    pub fn shell_edges(&self) -> impl Iterator<Item = (&Point, &Point)> {
        ring_edges(&self.shell)
    }

    /// Edge iterators for every ring (shell first, then holes).
    pub fn all_rings(&self) -> impl Iterator<Item = &[Point]> {
        std::iter::once(self.shell.as_slice()).chain(self.holes.iter().map(|h| h.as_slice()))
    }

    /// Total number of vertices across all rings (a size proxy used by the
    /// cost model: refinement cost scales with vertex count).
    pub fn num_vertices(&self) -> usize {
        self.shell.len() + self.holes.iter().map(Vec::len).sum::<usize>()
    }

    /// Translated copy.
    pub fn translate(&self, dx: f64, dy: f64) -> Polygon {
        Polygon {
            shell: self.shell.iter().map(|p| p.translate(dx, dy)).collect(),
            holes: self
                .holes
                .iter()
                .map(|h| h.iter().map(|p| p.translate(dx, dy)).collect())
                .collect(),
        }
    }
}

/// Iterator over a ring's closed edges. This is the one audited place that
/// walks ring vertices by position; every ring-edge loop in the crate goes
/// through it.
pub(crate) fn ring_edges(ring: &[Point]) -> impl Iterator<Item = (&Point, &Point)> {
    let n = ring.len();
    // sjc-lint: allow(no-panic-in-lib) — i < n and (i + 1) % n < n by construction
    (0..n).map(move |i| (&ring[i], &ring[(i + 1) % n]))
}

/// Shoelace signed area of an unclosed ring.
pub(crate) fn ring_signed_area(ring: &[Point]) -> f64 {
    if ring.len() < 3 {
        return 0.0;
    }
    let Some(&origin) = ring.first() else {
        return 0.0;
    };
    let mut acc = 0.0;
    for w in ring.windows(2) {
        if let [a, b] = w {
            acc += cross(&origin, a, b);
        }
    }
    acc / 2.0
}

fn ring_perimeter(ring: &[Point]) -> f64 {
    ring_edges(ring).map(|(a, b)| a.distance(b)).sum()
}

/// Strips an explicit closing vertex and validates vertex count.
fn normalize_ring(mut ring: Vec<Point>) -> Option<Vec<Point>> {
    if ring.len() >= 2 && ring.first() == ring.last() {
        ring.pop();
    }
    if ring.len() >= 3 {
        Some(ring)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    fn unit_square() -> Polygon {
        Polygon::new(pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]))
    }

    #[test]
    fn area_of_unit_square() {
        assert_eq!(unit_square().area(), 1.0);
        assert_eq!(unit_square().perimeter(), 4.0);
    }

    #[test]
    fn closed_input_ring_is_normalized() {
        let closed =
            Polygon::new(pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.0, 0.0)]));
        assert_eq!(closed.shell().len(), 4);
        assert_eq!(closed.area(), 1.0);
    }

    #[test]
    fn winding_direction_signs_area() {
        let ccw = Polygon::new(pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]));
        let cw = Polygon::new(pts(&[(0.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, 0.0)]));
        assert!(ccw.signed_area() > 0.0);
        assert!(cw.signed_area() < 0.0);
        assert_eq!(ccw.area(), cw.area());
    }

    #[test]
    fn hole_subtracts_area() {
        let donut = Polygon::with_holes(
            pts(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]),
            vec![pts(&[(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0)])],
        );
        assert_eq!(donut.area(), 16.0 - 4.0);
        assert_eq!(donut.num_vertices(), 8);
    }

    #[test]
    fn mbr_is_shell_mbr() {
        let tri = Polygon::new(pts(&[(0.0, 0.0), (4.0, 0.0), (2.0, 3.0)]));
        assert_eq!(tri.mbr(), Mbr::new(0.0, 0.0, 4.0, 3.0));
    }

    #[test]
    #[should_panic(expected = ">= 3 vertices")]
    fn rejects_degenerate_shell() {
        let _ = Polygon::new(pts(&[(0.0, 0.0), (1.0, 1.0)]));
    }

    #[test]
    fn try_constructor_rejects_bad_hole() {
        let p = Polygon::try_with_holes(
            pts(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)]),
            vec![pts(&[(0.1, 0.1), (0.2, 0.2)])],
        );
        assert!(p.is_none());
    }

    #[test]
    fn shell_edges_close_the_ring() {
        let sq = unit_square();
        let edges: Vec<_> = sq.shell_edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[3].1, edges[0].0, "last edge returns to first vertex");
    }

    #[test]
    fn translate_preserves_area() {
        let sq = unit_square().translate(100.0, -42.0);
        assert_eq!(sq.area(), 1.0);
        assert_eq!(sq.mbr(), Mbr::new(100.0, -42.0, 101.0, -41.0));
    }
}
