//! 2-D point type.

use crate::mbr::Mbr;

/// A point in the plane with `f64` coordinates.
///
/// Points are the left side of the paper's `taxi × nycb` experiment
/// (taxi pickup locations tested against census-block polygons).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The degenerate MBR covering only this point.
    pub fn mbr(&self) -> Mbr {
        Mbr::new(self.x, self.y, self.x, self.y)
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the `sqrt` when only comparing).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise translation.
    pub fn translate(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Returns `true` when both coordinates are finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(7.25, -3.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn point_mbr_is_degenerate() {
        let p = Point::new(2.0, -7.0);
        let m = p.mbr();
        assert_eq!((m.min_x, m.min_y, m.max_x, m.max_y), (2.0, -7.0, 2.0, -7.0));
        assert!(m.contains_point(&p));
    }

    #[test]
    fn translate_moves_both_axes() {
        let p = Point::new(1.0, 2.0).translate(0.5, -0.5);
        assert_eq!(p, Point::new(1.5, 1.5));
    }

    #[test]
    fn finiteness_detects_nan() {
        assert!(Point::new(0.0, 1.0).is_finite());
        assert!(!Point::new(f64::NAN, 1.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
