//! The [`Geometry`] enum: dynamic dispatch over geometry kinds.
//!
//! The paper stresses that the evaluated systems support joins where "both
//! sides of a join can be any type of geospatial data"; this enum is the
//! uniform record type flowing through the distributed substrates.

use crate::algorithms::{
    distance::{point_to_linestring_distance, point_within_distance},
    intersects::{
        linestrings_intersect, point_on_linestring, polygon_intersects_linestring,
        polygons_intersect,
    },
    point_in_polygon::point_in_polygon,
};
use crate::linestring::LineString;
use crate::mbr::Mbr;
use crate::point::Point;
use crate::polygon::Polygon;

/// A geometry value of any supported kind.
///
/// The three *simple* kinds cover the paper's experiments; the `Multi*`
/// kinds exist because real TIGER/census data contains them — every
/// operation decomposes a multi-geometry into its parts and combines the
/// part results (any-part for `intersects`, min for distance, union for
/// MBRs).
#[derive(Debug, Clone, PartialEq)]
pub enum Geometry {
    Point(Point),
    LineString(LineString),
    Polygon(Polygon),
    MultiPoint(Vec<Point>),
    MultiLineString(Vec<LineString>),
    MultiPolygon(Vec<Polygon>),
}

impl Geometry {
    /// Whether this is a multi-part geometry.
    pub fn is_multi(&self) -> bool {
        matches!(
            self,
            Geometry::MultiPoint(_) | Geometry::MultiLineString(_) | Geometry::MultiPolygon(_)
        )
    }

    /// Visits each simple part of a multi-geometry (or the geometry itself
    /// when simple), stopping early when the visitor returns `true`.
    fn any_part(&self, mut f: impl FnMut(&Geometry) -> bool) -> bool {
        match self {
            Geometry::MultiPoint(ps) => ps.iter().any(|p| f(&Geometry::Point(*p))),
            Geometry::MultiLineString(ls) => ls.iter().any(|l| f(&Geometry::LineString(l.clone()))),
            Geometry::MultiPolygon(ps) => ps.iter().any(|p| f(&Geometry::Polygon(p.clone()))),
            simple => f(simple),
        }
    }

    /// Tight MBR of the geometry.
    pub fn mbr(&self) -> Mbr {
        match self {
            Geometry::Point(p) => p.mbr(),
            Geometry::LineString(l) => l.mbr(),
            Geometry::Polygon(p) => p.mbr(),
            Geometry::MultiPoint(ps) => Mbr::from_points(ps.iter()),
            Geometry::MultiLineString(ls) => {
                let mut m = Mbr::empty();
                for l in ls {
                    m.expand(&l.mbr());
                }
                m
            }
            Geometry::MultiPolygon(ps) => {
                let mut m = Mbr::empty();
                for p in ps {
                    m.expand(&p.mbr());
                }
                m
            }
        }
    }

    /// Exact `intersects` test — the standard refinement predicate. Covers
    /// every kind pairing and is symmetric by construction; multi-geometries
    /// intersect when any part does.
    pub fn intersects(&self, other: &Geometry) -> bool {
        use Geometry::*;
        if self.is_multi() {
            return self.any_part(|part| part.intersects(other));
        }
        if other.is_multi() {
            return other.any_part(|part| part.intersects(self));
        }
        match (self, other) {
            (Point(a), Point(b)) => a == b,
            (Point(p), LineString(l)) | (LineString(l), Point(p)) => point_on_linestring(l, p),
            (Point(p), Polygon(pg)) | (Polygon(pg), Point(p)) => point_in_polygon(pg, p),
            (LineString(a), LineString(b)) => linestrings_intersect(a, b),
            (LineString(l), Polygon(pg)) | (Polygon(pg), LineString(l)) => {
                polygon_intersects_linestring(pg, l)
            }
            (Polygon(a), Polygon(b)) => polygons_intersect(a, b),
            // sjc-lint: allow(no-panic-in-lib) — multi kinds are dispatched by the is_multi guards above; this arm cannot be reached
            _ => unreachable!("multi kinds handled above"),
        }
    }

    /// `contains` test for the pairings that occur in practice.
    ///
    /// Only polygon-contains-point is required by the paper's experiments;
    /// other combinations fall back to `intersects` semantics where
    /// containment is equivalent (point/point) or return `false` where a
    /// lower-dimensional geometry cannot contain a higher-dimensional one.
    pub fn contains(&self, other: &Geometry) -> bool {
        use Geometry::*;
        match (self, other) {
            (Polygon(pg), Point(p)) => point_in_polygon(pg, p),
            (Point(a), Point(b)) => a == b,
            (LineString(l), Point(p)) => point_on_linestring(l, p),
            (MultiPolygon(pgs), Point(p)) => pgs.iter().any(|pg| point_in_polygon(pg, p)),
            _ => false,
        }
    }

    /// Whether the two geometries come within `d` of one another.
    ///
    /// Implemented for the point/polyline pairing used by the paper's
    /// motivating taxi-to-road-segment example; other pairings approximate
    /// via `intersects` of buffered MBRs plus exact distance on points.
    pub fn within_distance(&self, other: &Geometry, d: f64) -> bool {
        use Geometry::*;
        if self.is_multi() {
            return self.any_part(|part| part.within_distance(other, d));
        }
        if other.is_multi() {
            return other.any_part(|part| part.within_distance(self, d));
        }
        match (self, other) {
            (Point(a), Point(b)) => a.distance(b) <= d,
            (Point(p), LineString(l)) | (LineString(l), Point(p)) => point_within_distance(p, l, d),
            _ => {
                // Generic fallback: exact intersection, else conservative MBR
                // distance (exact for points/rectangles, lower bound otherwise).
                self.intersects(other) || self.mbr().min_distance(&other.mbr()) <= d
            }
        }
    }

    /// Distance from a point geometry to this geometry (used for
    /// nearest-neighbour style post-processing). `None` for unsupported
    /// pairings.
    pub fn distance_to_point(&self, p: &Point) -> Option<f64> {
        match self {
            Geometry::Point(q) => Some(p.distance(q)),
            Geometry::LineString(l) => Some(point_to_linestring_distance(p, l)),
            Geometry::Polygon(pg) => {
                if point_in_polygon(pg, p) {
                    Some(0.0)
                } else {
                    // Distance to the nearest shell/hole edge.
                    let mut best = f64::INFINITY;
                    for ring in pg.all_rings() {
                        for (a, b) in crate::polygon::ring_edges(ring) {
                            best = best
                                .min(crate::algorithms::distance::point_segment_distance(p, a, b));
                        }
                    }
                    Some(best)
                }
            }
            Geometry::MultiPoint(ps) => ps
                .iter()
                .map(|q| p.distance(q))
                .min_by(|a, b| a.total_cmp(b))
                .or(Some(f64::INFINITY)),
            Geometry::MultiLineString(ls) => ls
                .iter()
                .map(|l| point_to_linestring_distance(p, l))
                .min_by(|a, b| a.total_cmp(b))
                .or(Some(f64::INFINITY)),
            Geometry::MultiPolygon(pgs) => pgs
                .iter()
                .filter_map(|pg| Geometry::Polygon(pg.clone()).distance_to_point(p))
                .min_by(|a, b| a.total_cmp(b))
                .or(Some(f64::INFINITY)),
        }
    }

    /// Total arc length: polyline lengths and polygon perimeters summed
    /// over parts; 0 for points.
    pub fn length(&self) -> f64 {
        match self {
            Geometry::Point(_) | Geometry::MultiPoint(_) => 0.0,
            Geometry::LineString(l) => l.length(),
            Geometry::Polygon(p) => p.perimeter(),
            Geometry::MultiLineString(ls) => ls.iter().map(LineString::length).sum(),
            Geometry::MultiPolygon(ps) => ps.iter().map(Polygon::perimeter).sum(),
        }
    }

    /// Enclosed area: polygon areas summed over parts; 0 for points and
    /// polylines.
    pub fn area(&self) -> f64 {
        match self {
            Geometry::Polygon(p) => p.area(),
            Geometry::MultiPolygon(ps) => ps.iter().map(Polygon::area).sum(),
            _ => 0.0,
        }
    }

    /// Number of vertices — the size proxy for refinement cost.
    pub fn num_vertices(&self) -> usize {
        match self {
            Geometry::Point(_) => 1,
            Geometry::LineString(l) => l.num_points(),
            Geometry::Polygon(p) => p.num_vertices(),
            Geometry::MultiPoint(ps) => ps.len(),
            Geometry::MultiLineString(ls) => ls.iter().map(LineString::num_points).sum(),
            Geometry::MultiPolygon(ps) => ps.iter().map(Polygon::num_vertices).sum(),
        }
    }

    /// Approximate on-disk size of this geometry as WKT text, in bytes.
    /// Each vertex serializes to roughly two ~18-char decimal literals plus
    /// separators. Used by the cost model to charge I/O and parse costs
    /// without materializing strings.
    pub fn wkt_size_estimate(&self) -> u64 {
        let per_vertex = 40;
        let overhead = match self {
            Geometry::Point(_) => 8,       // "POINT ()"
            Geometry::LineString(_) => 13, // "LINESTRING ()"
            Geometry::Polygon(p) => 12 + 2 * (1 + p.holes().len()) as u64,
            Geometry::MultiPoint(ps) => 12 + 2 * ps.len() as u64,
            Geometry::MultiLineString(ls) => 17 + 2 * ls.len() as u64,
            Geometry::MultiPolygon(ps) => {
                14 + ps.iter().map(|p| 4 + 2 * p.holes().len() as u64).sum::<u64>()
            }
        };
        overhead + per_vertex * self.num_vertices() as u64
    }

    /// Short kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Geometry::Point(_) => "Point",
            Geometry::LineString(_) => "LineString",
            Geometry::Polygon(_) => "Polygon",
            Geometry::MultiPoint(_) => "MultiPoint",
            Geometry::MultiLineString(_) => "MultiLineString",
            Geometry::MultiPolygon(_) => "MultiPolygon",
        }
    }

    /// Translated copy (test helper for invariance properties).
    pub fn translate(&self, dx: f64, dy: f64) -> Geometry {
        match self {
            Geometry::Point(p) => Geometry::Point(p.translate(dx, dy)),
            Geometry::LineString(l) => Geometry::LineString(l.translate(dx, dy)),
            Geometry::Polygon(p) => Geometry::Polygon(p.translate(dx, dy)),
            Geometry::MultiPoint(ps) => {
                Geometry::MultiPoint(ps.iter().map(|p| p.translate(dx, dy)).collect())
            }
            Geometry::MultiLineString(ls) => {
                Geometry::MultiLineString(ls.iter().map(|l| l.translate(dx, dy)).collect())
            }
            Geometry::MultiPolygon(ps) => {
                Geometry::MultiPolygon(ps.iter().map(|p| p.translate(dx, dy)).collect())
            }
        }
    }
}

impl From<Point> for Geometry {
    fn from(p: Point) -> Self {
        Geometry::Point(p)
    }
}

impl From<LineString> for Geometry {
    fn from(l: LineString) -> Self {
        Geometry::LineString(l)
    }
}

impl From<Polygon> for Geometry {
    fn from(p: Polygon) -> Self {
        Geometry::Polygon(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    fn square(x0: f64, y0: f64, side: f64) -> Geometry {
        Geometry::Polygon(Polygon::new(pts(&[
            (x0, y0),
            (x0 + side, y0),
            (x0 + side, y0 + side),
            (x0, y0 + side),
        ])))
    }

    #[test]
    fn intersects_is_symmetric_across_kinds() {
        let geoms = vec![
            Geometry::Point(Point::new(0.5, 0.5)),
            Geometry::LineString(LineString::new(pts(&[(0.0, 0.0), (1.0, 1.0)]))),
            square(0.0, 0.0, 1.0),
            square(5.0, 5.0, 1.0),
        ];
        for a in &geoms {
            for b in &geoms {
                assert_eq!(a.intersects(b), b.intersects(a), "{} vs {}", a.kind(), b.kind());
            }
        }
    }

    #[test]
    fn exact_hit_implies_mbr_hit() {
        let a = Geometry::LineString(LineString::new(pts(&[(0.0, 0.0), (2.0, 2.0)])));
        let b = Geometry::LineString(LineString::new(pts(&[(0.0, 2.0), (2.0, 0.0)])));
        assert!(a.intersects(&b));
        assert!(a.mbr().intersects(&b.mbr()));
    }

    #[test]
    fn polygon_contains_point() {
        let sq = square(0.0, 0.0, 2.0);
        assert!(sq.contains(&Geometry::Point(Point::new(1.0, 1.0))));
        assert!(!sq.contains(&Geometry::Point(Point::new(3.0, 3.0))));
        assert!(
            !Geometry::Point(Point::new(1.0, 1.0)).contains(&sq),
            "point cannot contain polygon"
        );
    }

    #[test]
    fn within_distance_point_line() {
        let road = Geometry::LineString(LineString::new(pts(&[(0.0, 0.0), (10.0, 0.0)])));
        let p = Geometry::Point(Point::new(5.0, 2.0));
        assert!(p.within_distance(&road, 2.0));
        assert!(!p.within_distance(&road, 1.9));
        assert_eq!(p.within_distance(&road, 2.0), road.within_distance(&p, 2.0));
    }

    #[test]
    fn distance_to_point_variants() {
        let p = Point::new(0.0, 0.0);
        assert_eq!(Geometry::Point(Point::new(3.0, 4.0)).distance_to_point(&p), Some(5.0));
        let line = Geometry::LineString(LineString::new(pts(&[(0.0, 2.0), (4.0, 2.0)])));
        assert_eq!(line.distance_to_point(&p), Some(2.0));
        let sq = square(1.0, 0.0, 2.0);
        assert_eq!(sq.distance_to_point(&p), Some(1.0));
        assert_eq!(sq.distance_to_point(&Point::new(2.0, 1.0)), Some(0.0), "inside");
    }

    #[test]
    fn translation_invariance_of_intersects() {
        let a = Geometry::LineString(LineString::new(pts(&[(0.0, 0.0), (2.0, 2.0)])));
        let b = square(1.0, 1.0, 3.0);
        let hit = a.intersects(&b);
        let (dx, dy) = (123.0, -45.0);
        assert_eq!(a.translate(dx, dy).intersects(&b.translate(dx, dy)), hit);
    }

    #[test]
    fn length_and_area_dispatch() {
        assert_eq!(Geometry::Point(Point::new(1.0, 1.0)).length(), 0.0);
        assert_eq!(Geometry::Point(Point::new(1.0, 1.0)).area(), 0.0);
        let line = Geometry::LineString(LineString::new(pts(&[(0.0, 0.0), (3.0, 4.0)])));
        assert_eq!(line.length(), 5.0);
        assert_eq!(line.area(), 0.0);
        let sq = square(0.0, 0.0, 2.0);
        assert_eq!(sq.area(), 4.0);
        assert_eq!(sq.length(), 8.0);
        let multi = Geometry::MultiPolygon(vec![
            Polygon::new(pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)])),
            Polygon::new(pts(&[(5.0, 5.0), (7.0, 5.0), (7.0, 7.0), (5.0, 7.0)])),
        ]);
        assert_eq!(multi.area(), 1.0 + 4.0);
    }

    #[test]
    fn wkt_size_estimate_scales_with_vertices() {
        let small = Geometry::Point(Point::new(0.0, 0.0));
        let big = Geometry::LineString(LineString::new(pts(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.0),
            (3.0, 0.0),
        ])));
        assert!(big.wkt_size_estimate() > small.wkt_size_estimate());
    }
}
