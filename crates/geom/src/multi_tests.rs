//! Tests for multi-part geometries (MULTIPOINT / MULTILINESTRING /
//! MULTIPOLYGON): decomposition semantics, WKT round trips, and
//! interoperability with the simple kinds.

#![cfg(test)]

use crate::wkt::{parse_wkt, to_wkt};
use crate::{Geometry, LineString, Point, Polygon};

fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
    coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
}

fn square(x0: f64, y0: f64, side: f64) -> Polygon {
    Polygon::new(pts(&[(x0, y0), (x0 + side, y0), (x0 + side, y0 + side), (x0, y0 + side)]))
}

fn multi_polygon() -> Geometry {
    Geometry::MultiPolygon(vec![square(0.0, 0.0, 2.0), square(10.0, 10.0, 2.0)])
}

fn multi_line() -> Geometry {
    Geometry::MultiLineString(vec![
        LineString::new(pts(&[(0.0, 0.0), (2.0, 2.0)])),
        LineString::new(pts(&[(10.0, 0.0), (12.0, 2.0)])),
    ])
}

#[test]
fn mbr_unions_the_parts() {
    let m = multi_polygon().mbr();
    assert_eq!((m.min_x, m.min_y, m.max_x, m.max_y), (0.0, 0.0, 12.0, 12.0));
}

#[test]
fn intersects_when_any_part_hits() {
    let mp = multi_polygon();
    assert!(mp.intersects(&Geometry::Point(Point::new(1.0, 1.0))), "first part");
    assert!(mp.intersects(&Geometry::Point(Point::new(11.0, 11.0))), "second part");
    assert!(!mp.intersects(&Geometry::Point(Point::new(5.0, 5.0))), "the gap between parts");
}

#[test]
fn intersects_is_symmetric_with_simple_kinds() {
    let mp = multi_polygon();
    let ml = multi_line();
    let simple = [
        Geometry::Point(Point::new(1.0, 1.0)),
        Geometry::LineString(LineString::new(pts(&[(1.0, -1.0), (1.0, 3.0)]))),
        Geometry::Polygon(square(1.0, 1.0, 3.0)),
    ];
    for g in &simple {
        assert_eq!(mp.intersects(g), g.intersects(&mp), "{} vs MultiPolygon", g.kind());
        assert_eq!(ml.intersects(g), g.intersects(&ml), "{} vs MultiLineString", g.kind());
    }
}

#[test]
fn multi_vs_multi() {
    let mp = multi_polygon();
    let ml = multi_line();
    assert!(mp.intersects(&ml), "first line crosses first square");
    let far = Geometry::MultiPoint(pts(&[(50.0, 50.0), (60.0, 60.0)]));
    assert!(!mp.intersects(&far));
    assert!(far.intersects(&Geometry::Point(Point::new(50.0, 50.0))));
}

#[test]
fn contains_point_in_any_polygon_part() {
    let mp = multi_polygon();
    assert!(mp.contains(&Geometry::Point(Point::new(11.0, 11.0))));
    assert!(!mp.contains(&Geometry::Point(Point::new(5.0, 5.0))));
}

#[test]
fn distance_takes_the_minimum_over_parts() {
    let ml = multi_line();
    // (4,4) is 2*sqrt(2) from the first line's end (2,2); much farther from the second.
    let d = ml.distance_to_point(&Point::new(4.0, 4.0)).unwrap();
    assert!((d - 8.0f64.sqrt()).abs() < 1e-9);

    let mp = Geometry::MultiPoint(pts(&[(0.0, 0.0), (10.0, 0.0)]));
    assert_eq!(mp.distance_to_point(&Point::new(7.0, 0.0)).unwrap(), 3.0);
}

#[test]
fn within_distance_over_parts() {
    let ml = multi_line();
    let p = Geometry::Point(Point::new(13.0, 3.0)); // sqrt(2) from (12,2)
    assert!(p.within_distance(&ml, 1.5));
    assert!(!p.within_distance(&ml, 1.0));
}

#[test]
fn vertex_counts_sum_over_parts() {
    assert_eq!(multi_polygon().num_vertices(), 8);
    assert_eq!(multi_line().num_vertices(), 4);
    assert_eq!(Geometry::MultiPoint(pts(&[(0.0, 0.0), (1.0, 1.0)])).num_vertices(), 2);
}

#[test]
fn wkt_round_trips() {
    for g in [multi_polygon(), multi_line(), Geometry::MultiPoint(pts(&[(1.5, -2.0), (3.0, 4.25)]))]
    {
        let text = to_wkt(&g);
        let parsed = parse_wkt(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(parsed, g, "round trip failed for {text}");
    }
}

#[test]
fn wkt_exact_forms() {
    let mp = Geometry::MultiPoint(pts(&[(1.0, 2.0), (3.0, 4.0)]));
    assert_eq!(to_wkt(&mp), "MULTIPOINT ((1 2), (3 4))");
    // Legacy bare-coordinate member syntax also parses.
    assert_eq!(parse_wkt("MULTIPOINT (1 2, 3 4)").unwrap(), mp);

    let ml = multi_line();
    assert_eq!(to_wkt(&ml), "MULTILINESTRING ((0 0, 2 2), (10 0, 12 2))");
    let mpoly = Geometry::MultiPolygon(vec![square(0.0, 0.0, 1.0)]);
    assert_eq!(to_wkt(&mpoly), "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)))");
}

#[test]
fn wkt_multipolygon_with_holes() {
    let donut = Polygon::with_holes(
        pts(&[(0.0, 0.0), (6.0, 0.0), (6.0, 6.0), (0.0, 6.0)]),
        vec![pts(&[(2.0, 2.0), (4.0, 2.0), (4.0, 4.0), (2.0, 4.0)])],
    );
    let g = Geometry::MultiPolygon(vec![donut, square(10.0, 10.0, 1.0)]);
    let text = to_wkt(&g);
    assert_eq!(parse_wkt(&text).unwrap(), g);
}

#[test]
fn malformed_multis_are_rejected() {
    assert!(parse_wkt("MULTIPOINT ()").is_err());
    assert!(parse_wkt("MULTILINESTRING ((0 0))").is_err(), "1-vertex member");
    assert!(parse_wkt("MULTIPOLYGON (((0 0, 1 1)))").is_err(), "2-vertex ring");
    assert!(parse_wkt("MULTIPOINT (1 2").is_err(), "unbalanced");
}

#[test]
fn translation_moves_all_parts() {
    let g = multi_polygon().translate(100.0, 0.0);
    let m = g.mbr();
    assert_eq!((m.min_x, m.max_x), (100.0, 112.0));
}

#[test]
fn kind_names() {
    assert_eq!(multi_polygon().kind(), "MultiPolygon");
    assert_eq!(multi_line().kind(), "MultiLineString");
    assert_eq!(Geometry::MultiPoint(pts(&[(0.0, 0.0)])).kind(), "MultiPoint");
}

#[test]
fn exact_hit_implies_mbr_hit_for_multis() {
    let ml = multi_line();
    let probe = Geometry::LineString(LineString::new(pts(&[(11.0, 0.0), (11.0, 2.0)])));
    assert!(ml.intersects(&probe));
    assert!(ml.mbr().intersects(&probe.mbr()));
}
