//! Low-level planar predicates: orientation and segment intersection.
//!
//! These are the primitives underneath every refinement test in the local
//! join stage. Orientation uses an epsilon-guarded cross product; exact
//! arithmetic is unnecessary here because the synthetic datasets are generated
//! on well-separated coordinates, and the spatial-join invariants we reproduce
//! (symmetry, MBR consistency) are property-tested.

use crate::point::Point;

/// Result of the orientation test for an ordered point triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// `c` lies to the left of the directed line `a -> b` (counter-clockwise).
    CounterClockwise,
    /// `c` lies to the right of the directed line `a -> b` (clockwise).
    Clockwise,
    /// The three points are collinear (within tolerance).
    Collinear,
}

/// Relative tolerance scale used to absorb `f64` rounding in the cross
/// product. The guard is scaled by the magnitude of the operands so the
/// predicate behaves uniformly across coordinate ranges.
pub const EPS: f64 = 1e-12;

/// Whether `v` is zero within [`EPS`]. The `float-hygiene` lint forbids bare
/// `== 0.0` in this crate; every degenerate-case guard goes through here so
/// the tolerance is one definition, not many.
pub fn approx_zero(v: f64) -> bool {
    v.abs() < EPS
}

/// Whether `a` and `b` are equal within [`EPS`].
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() < EPS
}

/// Cross product `(b - a) × (c - a)`; positive for counter-clockwise turns.
pub fn cross(a: &Point, b: &Point, c: &Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Orientation of the ordered triple `(a, b, c)`.
pub fn orientation(a: &Point, b: &Point, c: &Point) -> Orientation {
    let v = cross(a, b, c);
    // Scale tolerance by operand magnitude for uniform behaviour.
    let scale =
        (b.x - a.x).abs().max((b.y - a.y).abs()).max((c.x - a.x).abs()).max((c.y - a.y).abs());
    let tol = EPS * scale * scale;
    if v > tol {
        Orientation::CounterClockwise
    } else if v < -tol {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// Whether point `p` lies on the closed segment `a..=b`
/// (assumes `p` is already known collinear with `a, b`).
pub fn on_segment(a: &Point, b: &Point, p: &Point) -> bool {
    p.x >= a.x.min(b.x) - f64::EPSILON
        && p.x <= a.x.max(b.x) + f64::EPSILON
        && p.y >= a.y.min(b.y) - f64::EPSILON
        && p.y <= a.y.max(b.y) + f64::EPSILON
}

/// Closed segment–segment intersection test, including collinear overlap and
/// endpoint touching. This is the workhorse of the `edges × linearwater`
/// polyline-intersection experiment.
pub fn segments_intersect(p1: &Point, p2: &Point, q1: &Point, q2: &Point) -> bool {
    let o1 = orientation(p1, p2, q1);
    let o2 = orientation(p1, p2, q2);
    let o3 = orientation(q1, q2, p1);
    let o4 = orientation(q1, q2, p2);

    if o1 != o2
        && o3 != o4
        && o1 != Orientation::Collinear
        && o2 != Orientation::Collinear
        && o3 != Orientation::Collinear
        && o4 != Orientation::Collinear
    {
        return true; // proper crossing
    }

    // Special cases: an endpoint of one segment lies on the other segment.
    (o1 == Orientation::Collinear && on_segment(p1, p2, q1))
        || (o2 == Orientation::Collinear && on_segment(p1, p2, q2))
        || (o3 == Orientation::Collinear && on_segment(q1, q2, p1))
        || (o4 == Orientation::Collinear && on_segment(q1, q2, p2))
}

/// Intersection *point* of two properly crossing segments, if one exists.
///
/// Returns `None` for disjoint or collinear-overlapping segments (the latter
/// has no unique intersection point).
pub fn segment_intersection_point(p1: &Point, p2: &Point, q1: &Point, q2: &Point) -> Option<Point> {
    let r = (p2.x - p1.x, p2.y - p1.y);
    let s = (q2.x - q1.x, q2.y - q1.y);
    let denom = r.0 * s.1 - r.1 * s.0;
    if denom.abs() < f64::EPSILON {
        return None; // parallel or collinear
    }
    let qp = (q1.x - p1.x, q1.y - p1.y);
    let t = (qp.0 * s.1 - qp.1 * s.0) / denom;
    let u = (qp.0 * r.1 - qp.1 * r.0) / denom;
    if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
        Some(Point::new(p1.x + t * r.0, p1.y + t * r.1))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn orientation_basic() {
        assert_eq!(
            orientation(&p(0.0, 0.0), &p(1.0, 0.0), &p(0.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(orientation(&p(0.0, 0.0), &p(1.0, 0.0), &p(0.0, -1.0)), Orientation::Clockwise);
        assert_eq!(orientation(&p(0.0, 0.0), &p(1.0, 1.0), &p(2.0, 2.0)), Orientation::Collinear);
    }

    #[test]
    fn orientation_flips_under_swap() {
        let (a, b, c) = (p(0.3, 0.7), p(2.1, -0.4), p(1.0, 3.0));
        assert_eq!(orientation(&a, &b, &c), Orientation::CounterClockwise);
        assert_eq!(orientation(&b, &a, &c), Orientation::Clockwise);
    }

    #[test]
    fn proper_crossing() {
        assert!(segments_intersect(&p(0.0, 0.0), &p(2.0, 2.0), &p(0.0, 2.0), &p(2.0, 0.0)));
    }

    #[test]
    fn disjoint_segments() {
        assert!(!segments_intersect(&p(0.0, 0.0), &p(1.0, 0.0), &p(0.0, 1.0), &p(1.0, 1.0)));
        assert!(!segments_intersect(&p(0.0, 0.0), &p(1.0, 1.0), &p(2.0, 2.0), &p(3.0, 3.5)));
    }

    #[test]
    fn endpoint_touch_counts_as_intersection() {
        assert!(segments_intersect(&p(0.0, 0.0), &p(1.0, 1.0), &p(1.0, 1.0), &p(2.0, 0.0)));
        // T-junction: endpoint in segment interior
        assert!(segments_intersect(&p(0.0, 0.0), &p(2.0, 0.0), &p(1.0, 0.0), &p(1.0, 1.0)));
    }

    #[test]
    fn collinear_overlap_intersects() {
        assert!(segments_intersect(&p(0.0, 0.0), &p(2.0, 0.0), &p(1.0, 0.0), &p(3.0, 0.0)));
        // Collinear but disjoint
        assert!(!segments_intersect(&p(0.0, 0.0), &p(1.0, 0.0), &p(2.0, 0.0), &p(3.0, 0.0)));
    }

    #[test]
    fn intersection_is_symmetric() {
        let (a, b, c, d) = (p(0.0, 0.0), p(2.0, 2.0), p(0.0, 2.0), p(2.0, 0.0));
        assert_eq!(segments_intersect(&a, &b, &c, &d), segments_intersect(&c, &d, &a, &b));
    }

    #[test]
    fn intersection_point_of_cross() {
        let ip = segment_intersection_point(&p(0.0, 0.0), &p(2.0, 2.0), &p(0.0, 2.0), &p(2.0, 0.0))
            .unwrap();
        assert!((ip.x - 1.0).abs() < 1e-12 && (ip.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_point_none_for_parallel() {
        assert!(segment_intersection_point(&p(0.0, 0.0), &p(1.0, 0.0), &p(0.0, 1.0), &p(1.0, 1.0))
            .is_none());
    }

    #[test]
    fn intersection_point_none_when_beyond_ends() {
        assert!(segment_intersection_point(
            &p(0.0, 0.0),
            &p(1.0, 0.0),
            &p(2.0, -1.0),
            &p(2.0, 1.0)
        )
        .is_none());
    }
}
