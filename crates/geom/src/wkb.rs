//! Well-Known Binary (WKB) serialization.
//!
//! SpatialHadoop's indexed HDFS blocks store geometry in binary form — the
//! reason its jobs skip the text re-parsing HadoopGIS pays on every stage.
//! This is a standard little-endian WKB codec for the supported kinds
//! (geometry type codes 1–6), used by the simulated block format and by
//! anyone exchanging data with PostGIS-style tooling.

use crate::{Geometry, LineString, Point, Polygon};

/// WKB decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WkbError {
    /// Input ended prematurely.
    Truncated,
    /// Big-endian payloads are not produced by this writer and not accepted.
    UnsupportedByteOrder(u8),
    /// Unknown geometry type code.
    UnknownType(u32),
    /// Structural violation (ring too short, unclosed ring, etc.).
    Malformed(&'static str),
    /// Trailing bytes after the geometry.
    TrailingBytes(usize),
}

impl std::fmt::Display for WkbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WkbError::Truncated => write!(f, "WKB input truncated"),
            WkbError::UnsupportedByteOrder(b) => write!(f, "unsupported WKB byte order {b}"),
            WkbError::UnknownType(t) => write!(f, "unknown WKB geometry type {t}"),
            WkbError::Malformed(m) => write!(f, "malformed WKB: {m}"),
            WkbError::TrailingBytes(n) => write!(f, "{n} trailing bytes after WKB geometry"),
        }
    }
}

impl std::error::Error for WkbError {}

const LITTLE_ENDIAN: u8 = 1;

/// Serializes a geometry to little-endian WKB.
pub fn to_wkb(g: &Geometry) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + g.num_vertices() * 16);
    write_geometry(&mut out, g);
    out
}

/// Parses one WKB geometry; the whole input must be consumed.
pub fn parse_wkb(bytes: &[u8]) -> Result<Geometry, WkbError> {
    let mut cur = Reader { bytes, pos: 0 };
    let g = read_geometry(&mut cur)?;
    if cur.pos != bytes.len() {
        return Err(WkbError::TrailingBytes(bytes.len() - cur.pos));
    }
    Ok(g)
}

fn type_code(g: &Geometry) -> u32 {
    match g {
        Geometry::Point(_) => 1,
        Geometry::LineString(_) => 2,
        Geometry::Polygon(_) => 3,
        Geometry::MultiPoint(_) => 4,
        Geometry::MultiLineString(_) => 5,
        Geometry::MultiPolygon(_) => 6,
    }
}

fn write_geometry(out: &mut Vec<u8>, g: &Geometry) {
    out.push(LITTLE_ENDIAN);
    out.extend_from_slice(&type_code(g).to_le_bytes());
    match g {
        Geometry::Point(p) => write_point(out, p),
        Geometry::LineString(l) => write_points(out, l.points()),
        Geometry::Polygon(poly) => write_polygon_body(out, poly),
        Geometry::MultiPoint(ps) => {
            out.extend_from_slice(&(ps.len() as u32).to_le_bytes());
            for p in ps {
                write_geometry(out, &Geometry::Point(*p));
            }
        }
        Geometry::MultiLineString(ls) => {
            out.extend_from_slice(&(ls.len() as u32).to_le_bytes());
            for l in ls {
                write_geometry(out, &Geometry::LineString(l.clone()));
            }
        }
        Geometry::MultiPolygon(ps) => {
            out.extend_from_slice(&(ps.len() as u32).to_le_bytes());
            for p in ps {
                write_geometry(out, &Geometry::Polygon(p.clone()));
            }
        }
    }
}

fn write_point(out: &mut Vec<u8>, p: &Point) {
    out.extend_from_slice(&p.x.to_le_bytes());
    out.extend_from_slice(&p.y.to_le_bytes());
}

fn write_points(out: &mut Vec<u8>, pts: &[Point]) {
    out.extend_from_slice(&(pts.len() as u32).to_le_bytes());
    for p in pts {
        write_point(out, p);
    }
}

/// Rings are written explicitly closed, per the WKB convention.
fn write_ring(out: &mut Vec<u8>, ring: &[Point]) {
    out.extend_from_slice(&((ring.len() + 1) as u32).to_le_bytes());
    for p in ring {
        write_point(out, p);
    }
    if let Some(first) = ring.first() {
        write_point(out, first);
    }
}

fn write_polygon_body(out: &mut Vec<u8>, poly: &Polygon) {
    out.extend_from_slice(&((1 + poly.holes().len()) as u32).to_le_bytes());
    write_ring(out, poly.shell());
    for hole in poly.holes() {
        write_ring(out, hole);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WkbError> {
        let s = self.bytes.get(self.pos..self.pos + n).ok_or(WkbError::Truncated)?;
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WkbError> {
        self.take(1)?.first().copied().ok_or(WkbError::Truncated)
    }

    fn u32(&mut self) -> Result<u32, WkbError> {
        let arr: [u8; 4] = self.take(4)?.try_into().map_err(|_| WkbError::Truncated)?;
        Ok(u32::from_le_bytes(arr))
    }

    fn f64(&mut self) -> Result<f64, WkbError> {
        let arr: [u8; 8] = self.take(8)?.try_into().map_err(|_| WkbError::Truncated)?;
        Ok(f64::from_le_bytes(arr))
    }

    fn point(&mut self) -> Result<Point, WkbError> {
        Ok(Point::new(self.f64()?, self.f64()?))
    }

    fn points(&mut self) -> Result<Vec<Point>, WkbError> {
        let n = self.u32()? as usize;
        // Defensive cap: a count can't exceed the remaining byte budget.
        if n > (self.bytes.len() - self.pos) / 16 {
            return Err(WkbError::Truncated);
        }
        (0..n).map(|_| self.point()).collect()
    }
}

fn read_geometry(cur: &mut Reader<'_>) -> Result<Geometry, WkbError> {
    let order = cur.u8()?;
    if order != LITTLE_ENDIAN {
        return Err(WkbError::UnsupportedByteOrder(order));
    }
    match cur.u32()? {
        1 => Ok(Geometry::Point(cur.point()?)),
        2 => {
            let pts = cur.points()?;
            LineString::try_new(pts)
                .map(Geometry::LineString)
                .ok_or(WkbError::Malformed("linestring needs >= 2 points"))
        }
        3 => Ok(Geometry::Polygon(read_polygon_body(cur)?)),
        4 => {
            let n = cur.u32()? as usize;
            let mut ps = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                match read_geometry(cur)? {
                    Geometry::Point(p) => ps.push(p),
                    _ => return Err(WkbError::Malformed("multipoint member must be a point")),
                }
            }
            if ps.is_empty() {
                return Err(WkbError::Malformed("empty multipoint"));
            }
            Ok(Geometry::MultiPoint(ps))
        }
        5 => {
            let n = cur.u32()? as usize;
            let mut ls = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                match read_geometry(cur)? {
                    Geometry::LineString(l) => ls.push(l),
                    _ => {
                        return Err(WkbError::Malformed(
                            "multilinestring member must be a linestring",
                        ))
                    }
                }
            }
            if ls.is_empty() {
                return Err(WkbError::Malformed("empty multilinestring"));
            }
            Ok(Geometry::MultiLineString(ls))
        }
        6 => {
            let n = cur.u32()? as usize;
            let mut ps = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                match read_geometry(cur)? {
                    Geometry::Polygon(p) => ps.push(p),
                    _ => return Err(WkbError::Malformed("multipolygon member must be a polygon")),
                }
            }
            if ps.is_empty() {
                return Err(WkbError::Malformed("empty multipolygon"));
            }
            Ok(Geometry::MultiPolygon(ps))
        }
        other => Err(WkbError::UnknownType(other)),
    }
}

fn read_polygon_body(cur: &mut Reader<'_>) -> Result<Polygon, WkbError> {
    let rings = cur.u32()? as usize;
    if rings == 0 {
        return Err(WkbError::Malformed("polygon needs >= 1 ring"));
    }
    let mut all = Vec::with_capacity(rings.min(64));
    for _ in 0..rings {
        let ring = cur.points()?;
        if ring.len() < 4 || ring.first() != ring.last() {
            return Err(WkbError::Malformed("ring must be closed with >= 4 points"));
        }
        all.push(ring);
    }
    let shell = all.remove(0);
    Polygon::try_with_holes(shell, all).ok_or(WkbError::Malformed("degenerate ring"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    fn samples() -> Vec<Geometry> {
        vec![
            Geometry::Point(Point::new(1.5, -2.25)),
            Geometry::LineString(LineString::new(pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]))),
            Geometry::Polygon(Polygon::with_holes(
                pts(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]),
                vec![pts(&[(1.0, 1.0), (2.0, 1.0), (2.0, 2.0), (1.0, 2.0)])],
            )),
            Geometry::MultiPoint(pts(&[(1.0, 2.0), (3.0, 4.0)])),
            Geometry::MultiLineString(vec![
                LineString::new(pts(&[(0.0, 0.0), (1.0, 0.0)])),
                LineString::new(pts(&[(5.0, 5.0), (6.0, 6.0), (7.0, 5.0)])),
            ]),
            Geometry::MultiPolygon(vec![
                Polygon::new(pts(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)])),
                Polygon::new(pts(&[(10.0, 10.0), (11.0, 10.0), (10.5, 11.0)])),
            ]),
        ]
    }

    #[test]
    fn round_trip_every_kind() {
        for g in samples() {
            let bytes = to_wkb(&g);
            let back = parse_wkb(&bytes).unwrap_or_else(|e| panic!("{}: {e}", g.kind()));
            assert_eq!(back, g, "{} round trip", g.kind());
        }
    }

    #[test]
    fn wkb_point_layout_is_standard() {
        // 1 (LE) + type 1 + x + y = 21 bytes; x=1.0 little-endian.
        let bytes = to_wkb(&Geometry::Point(Point::new(1.0, 2.0)));
        assert_eq!(bytes.len(), 21);
        assert_eq!(bytes[0], 1);
        assert_eq!(&bytes[1..5], &[1, 0, 0, 0]);
        assert_eq!(&bytes[5..13], &1.0f64.to_le_bytes());
    }

    #[test]
    fn wkb_is_smaller_than_wkt_for_dense_polylines() {
        let l = Geometry::LineString(LineString::new(
            (0..100).map(|i| Point::new(i as f64 * 1.234567, i as f64 * 7.654321)).collect(),
        ));
        let wkb = to_wkb(&l).len();
        let wkt = crate::wkt::to_wkt(&l).len();
        assert!(wkb < wkt, "wkb {wkb} vs wkt {wkt}");
    }

    #[test]
    fn truncated_inputs_are_rejected() {
        let bytes = to_wkb(&samples()[2]);
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(parse_wkb(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_wkb(&samples()[0]);
        bytes.push(0);
        assert!(matches!(parse_wkb(&bytes), Err(WkbError::TrailingBytes(1))));
    }

    #[test]
    fn big_endian_and_unknown_types_are_rejected() {
        let mut bytes = to_wkb(&samples()[0]);
        bytes[0] = 0; // big-endian marker
        assert!(matches!(parse_wkb(&bytes), Err(WkbError::UnsupportedByteOrder(0))));

        let mut bytes = to_wkb(&samples()[0]);
        bytes[1] = 99;
        assert!(matches!(parse_wkb(&bytes), Err(WkbError::UnknownType(99))));
    }

    #[test]
    fn hostile_count_does_not_allocate() {
        // Type 2 (linestring) with a count of u32::MAX but no payload.
        let mut bytes = vec![1u8];
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(parse_wkb(&bytes), Err(WkbError::Truncated)));
    }

    #[test]
    fn unclosed_ring_is_rejected() {
        // Hand-build a polygon whose ring does not repeat its first point.
        let mut bytes = vec![1u8];
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one ring
        bytes.extend_from_slice(&4u32.to_le_bytes()); // four points
        for (x, y) in [(0.0f64, 0.0f64), (1.0, 0.0), (1.0, 1.0), (0.5, 0.5)] {
            bytes.extend_from_slice(&x.to_le_bytes());
            bytes.extend_from_slice(&y.to_le_bytes());
        }
        assert!(matches!(parse_wkb(&bytes), Err(WkbError::Malformed(_))));
    }
}
