//! Minimum bounding rectangle (envelope) algebra.
//!
//! MBRs drive the *filter* phase of every spatial join in the paper: both the
//! global join (pairing partitions by MBR intersection) and the local join
//! (index probes before exact-geometry refinement).

use crate::point::Point;

/// An axis-aligned minimum bounding rectangle.
///
/// The empty MBR is represented with inverted bounds
/// (`min > max`, see [`Mbr::empty`]); every operation treats it as the
/// identity for [`Mbr::expand`] and as disjoint from everything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mbr {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl Mbr {
    /// Creates an MBR from bounds. Bounds are normalized so that
    /// `min <= max` on each axis.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        let m = Mbr {
            min_x: min_x.min(max_x),
            min_y: min_y.min(max_y),
            max_x: min_x.max(max_x),
            max_y: min_y.max(max_y),
        };
        #[cfg(feature = "sanitize")]
        m.sanitize_check();
        m
    }

    /// Runtime invariant sanitizer (feature `sanitize`): a corrupt MBR is one
    /// carrying a NaN bound — inverted bounds are the legitimate empty
    /// encoding, but NaN poisons every comparison silently.
    #[cfg(feature = "sanitize")]
    #[inline]
    pub fn sanitize_check(&self) {
        debug_assert!(
            !(self.min_x.is_nan()
                || self.min_y.is_nan()
                || self.max_x.is_nan()
                || self.max_y.is_nan()),
            "sanitize: MBR with NaN bounds: {self:?}"
        );
    }

    /// The empty MBR: identity for [`expand`](Mbr::expand), intersects nothing.
    pub const fn empty() -> Self {
        Mbr {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    /// Whether this is the empty MBR.
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Builds the tightest MBR covering `points`; empty input gives [`Mbr::empty`].
    pub fn from_points<'a, I: IntoIterator<Item = &'a Point>>(points: I) -> Self {
        let mut mbr = Mbr::empty();
        for p in points {
            mbr.expand_point(p);
        }
        mbr
    }

    /// Width along the x axis (0 for empty).
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max_x - self.min_x
        }
    }

    /// Height along the y axis (0 for empty).
    pub fn height(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max_y - self.min_y
        }
    }

    /// Area (0 for empty or degenerate MBRs).
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter, the classic R-tree "margin" measure.
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point. Meaningless for the empty MBR (returns non-finite values).
    pub fn center(&self) -> Point {
        Point::new((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)
    }

    /// Closed-boundary intersection test (touching rectangles intersect).
    pub fn intersects(&self, other: &Mbr) -> bool {
        !(self.is_empty()
            || other.is_empty()
            || self.min_x > other.max_x
            || other.min_x > self.max_x
            || self.min_y > other.max_y
            || other.min_y > self.max_y)
    }

    /// Whether `other` lies entirely inside (or on the boundary of) `self`.
    pub fn contains(&self, other: &Mbr) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min_x <= other.min_x
            && self.max_x >= other.max_x
            && self.min_y <= other.min_y
            && self.max_y >= other.max_y
    }

    /// Whether point `p` lies inside or on the boundary.
    pub fn contains_point(&self, p: &Point) -> bool {
        !self.is_empty()
            && p.x >= self.min_x
            && p.x <= self.max_x
            && p.y >= self.min_y
            && p.y <= self.max_y
    }

    /// Grows `self` to cover `other`.
    pub fn expand(&mut self, other: &Mbr) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = *other;
            #[cfg(feature = "sanitize")]
            self.sanitize_check();
            return;
        }
        self.min_x = self.min_x.min(other.min_x);
        self.min_y = self.min_y.min(other.min_y);
        self.max_x = self.max_x.max(other.max_x);
        self.max_y = self.max_y.max(other.max_y);
        #[cfg(feature = "sanitize")]
        self.sanitize_check();
    }

    /// Grows `self` to cover point `p`.
    pub fn expand_point(&mut self, p: &Point) {
        self.expand(&p.mbr());
    }

    /// The union of two MBRs (tightest MBR covering both).
    pub fn union(&self, other: &Mbr) -> Mbr {
        let mut m = *self;
        m.expand(other);
        #[cfg(feature = "sanitize")]
        debug_assert!(
            (self.is_empty() || m.contains(self)) && (other.is_empty() || m.contains(other)),
            "sanitize: union {m:?} must cover both {self:?} and {other:?}"
        );
        m
    }

    /// The intersection rectangle, or [`Mbr::empty`] when disjoint.
    pub fn intersection(&self, other: &Mbr) -> Mbr {
        if !self.intersects(other) {
            return Mbr::empty();
        }
        Mbr {
            min_x: self.min_x.max(other.min_x),
            min_y: self.min_y.max(other.min_y),
            max_x: self.max_x.min(other.max_x),
            max_y: self.max_y.min(other.max_y),
        }
    }

    /// Area growth required to cover `other` — the R-tree insertion heuristic.
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Minimum distance between two MBRs (0 when intersecting).
    pub fn min_distance(&self, other: &Mbr) -> f64 {
        if self.is_empty() || other.is_empty() {
            return f64::INFINITY;
        }
        let dx = (other.min_x - self.max_x).max(self.min_x - other.max_x).max(0.0);
        let dy = (other.min_y - self.max_y).max(self.min_y - other.max_y).max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// Expands bounds outward by `d` on each side (a buffer), used by
    /// within-distance joins to widen the filter box.
    pub fn buffered(&self, d: f64) -> Mbr {
        if self.is_empty() {
            return *self;
        }
        Mbr {
            min_x: self.min_x - d,
            min_y: self.min_y - d,
            max_x: self.max_x + d,
            max_y: self.max_y + d,
        }
    }

    /// Translation by `(dx, dy)`.
    pub fn translate(&self, dx: f64, dy: f64) -> Mbr {
        if self.is_empty() {
            return *self;
        }
        Mbr {
            min_x: self.min_x + dx,
            min_y: self.min_y + dy,
            max_x: self.max_x + dx,
            max_y: self.max_y + dy,
        }
    }

    /// The "reference point" of an intersection used for duplicate avoidance
    /// in partitioned spatial joins: the lower-left corner of the
    /// intersection of two MBRs. A result pair is reported only by the
    /// partition containing this point, so pairs duplicated across partitions
    /// are emitted exactly once.
    pub fn reference_point(&self, other: &Mbr) -> Option<Point> {
        let inter = self.intersection(other);
        if inter.is_empty() {
            None
        } else {
            Some(Point::new(inter.min_x, inter.min_y))
        }
    }
}

impl Default for Mbr {
    fn default() -> Self {
        Mbr::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(a: f64, b: f64, c: f64, d: f64) -> Mbr {
        Mbr::new(a, b, c, d)
    }

    #[test]
    fn new_normalizes_inverted_bounds() {
        let r = Mbr::new(5.0, 7.0, 1.0, 2.0);
        assert_eq!((r.min_x, r.min_y, r.max_x, r.max_y), (1.0, 2.0, 5.0, 7.0));
    }

    #[test]
    fn empty_is_identity_for_expand() {
        let mut e = Mbr::empty();
        assert!(e.is_empty());
        let r = m(0.0, 0.0, 1.0, 1.0);
        e.expand(&r);
        assert_eq!(e, r);
        let mut r2 = r;
        r2.expand(&Mbr::empty());
        assert_eq!(r2, r);
    }

    #[test]
    fn empty_intersects_nothing() {
        let r = m(0.0, 0.0, 10.0, 10.0);
        assert!(!Mbr::empty().intersects(&r));
        assert!(!r.intersects(&Mbr::empty()));
        assert!(!Mbr::empty().intersects(&Mbr::empty()));
    }

    #[test]
    fn touching_rectangles_intersect() {
        let a = m(0.0, 0.0, 1.0, 1.0);
        let b = m(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        let c = m(1.0, 1.0, 2.0, 2.0); // corner touch
        assert!(a.intersects(&c));
    }

    #[test]
    fn disjoint_rectangles_do_not_intersect() {
        let a = m(0.0, 0.0, 1.0, 1.0);
        assert!(!a.intersects(&m(1.1, 0.0, 2.0, 1.0)));
        assert!(!a.intersects(&m(0.0, 1.1, 1.0, 2.0)));
    }

    #[test]
    fn containment() {
        let outer = m(0.0, 0.0, 10.0, 10.0);
        let inner = m(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer), "containment is reflexive");
    }

    #[test]
    fn intersection_geometry() {
        let a = m(0.0, 0.0, 4.0, 4.0);
        let b = m(2.0, 2.0, 6.0, 6.0);
        assert_eq!(a.intersection(&b), m(2.0, 2.0, 4.0, 4.0));
        assert!(a.intersection(&m(5.0, 5.0, 6.0, 6.0)).is_empty());
    }

    #[test]
    fn union_covers_both() {
        let a = m(0.0, 0.0, 1.0, 1.0);
        let b = m(3.0, -2.0, 4.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains(&a) && u.contains(&b));
        assert_eq!(u, m(0.0, -2.0, 4.0, 1.0));
    }

    #[test]
    fn area_margin_center() {
        let r = m(0.0, 0.0, 4.0, 2.0);
        assert_eq!(r.area(), 8.0);
        assert_eq!(r.margin(), 6.0);
        assert_eq!(r.center(), Point::new(2.0, 1.0));
        assert_eq!(Mbr::empty().area(), 0.0);
    }

    #[test]
    fn enlargement_is_zero_for_contained() {
        let outer = m(0.0, 0.0, 10.0, 10.0);
        assert_eq!(outer.enlargement(&m(1.0, 1.0, 2.0, 2.0)), 0.0);
        assert!(outer.enlargement(&m(9.0, 9.0, 12.0, 12.0)) > 0.0);
    }

    #[test]
    fn min_distance() {
        let a = m(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.min_distance(&m(0.5, 0.5, 2.0, 2.0)), 0.0);
        assert_eq!(a.min_distance(&m(3.0, 0.0, 4.0, 1.0)), 2.0);
        let diag = a.min_distance(&m(4.0, 5.0, 6.0, 7.0));
        assert!((diag - 5.0).abs() < 1e-12); // 3-4-5 triangle
    }

    #[test]
    fn buffered_expands_all_sides() {
        let r = m(0.0, 0.0, 1.0, 1.0).buffered(0.5);
        assert_eq!(r, m(-0.5, -0.5, 1.5, 1.5));
    }

    #[test]
    fn reference_point_is_lower_left_of_intersection() {
        let a = m(0.0, 0.0, 4.0, 4.0);
        let b = m(2.0, 1.0, 6.0, 6.0);
        assert_eq!(a.reference_point(&b), Some(Point::new(2.0, 1.0)));
        assert_eq!(b.reference_point(&a), Some(Point::new(2.0, 1.0)), "symmetric");
        assert_eq!(a.reference_point(&m(5.0, 5.0, 6.0, 6.0)), None);
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [Point::new(1.0, 5.0), Point::new(-2.0, 0.0), Point::new(3.0, 2.0)];
        let mbr = Mbr::from_points(pts.iter());
        assert_eq!(mbr, m(-2.0, 0.0, 3.0, 5.0));
        for p in &pts {
            assert!(mbr.contains_point(p));
        }
        assert!(Mbr::from_points(std::iter::empty()).is_empty());
    }
}
