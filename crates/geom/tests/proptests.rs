//! Property-based tests for the geometry engine.

use proptest::prelude::*;
use sjc_geom::algorithms::{point_in_polygon, point_segment_distance};
use sjc_geom::predicates::{segments_intersect, segment_intersection_point};
use sjc_geom::wkt::{parse_wkt, to_wkt};
use sjc_geom::{Geometry, LineString, Mbr, Point, Polygon};

fn coord() -> impl Strategy<Value = f64> {
    // Plain decimal range, no NaN/inf; covers negative and fractional values.
    (-1000.0f64..1000.0).prop_map(|v| (v * 16.0).round() / 16.0)
}

fn point() -> impl Strategy<Value = Point> {
    (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn linestring() -> impl Strategy<Value = LineString> {
    proptest::collection::vec(point(), 2..12).prop_map(LineString::new)
}

/// A random convex-ish polygon: points on a jittered circle, sorted by angle.
fn polygon() -> impl Strategy<Value = Polygon> {
    (
        point(),
        10.0f64..200.0,
        proptest::collection::vec(0.5f64..1.0, 4..12),
    )
        .prop_map(|(center, radius, jitters)| {
            let n = jitters.len();
            let ring: Vec<Point> = jitters
                .iter()
                .enumerate()
                .map(|(i, j)| {
                    let theta = (i as f64) / (n as f64) * std::f64::consts::TAU;
                    Point::new(
                        center.x + radius * j * theta.cos(),
                        center.y + radius * j * theta.sin(),
                    )
                })
                .collect();
            Polygon::new(ring)
        })
}

fn geometry() -> impl Strategy<Value = Geometry> {
    prop_oneof![
        3 => point().prop_map(Geometry::Point),
        3 => linestring().prop_map(Geometry::LineString),
        3 => polygon().prop_map(Geometry::Polygon),
        1 => proptest::collection::vec(point(), 1..6).prop_map(Geometry::MultiPoint),
        1 => proptest::collection::vec(linestring(), 1..4).prop_map(Geometry::MultiLineString),
        1 => proptest::collection::vec(polygon(), 1..3).prop_map(Geometry::MultiPolygon),
    ]
}

proptest! {
    #[test]
    fn wkt_round_trip(g in geometry()) {
        let text = to_wkt(&g);
        let parsed = parse_wkt(&text).expect("writer output must parse");
        prop_assert_eq!(parsed, g);
    }

    #[test]
    fn wkb_round_trip(g in geometry()) {
        use sjc_geom::wkb::{parse_wkb, to_wkb};
        let bytes = to_wkb(&g);
        let parsed = parse_wkb(&bytes).expect("writer output must parse");
        prop_assert_eq!(parsed, g);
    }

    #[test]
    fn wkt_parser_never_panics_on_garbage(input in "[A-Za-z0-9 (),.-]{0,80}") {
        // Fuzz: arbitrary printable input either parses (and then
        // round-trips) or errors cleanly.
        if let Ok(g) = parse_wkt(&input) {
            let re = to_wkt(&g);
            prop_assert_eq!(parse_wkt(&re).expect("writer output parses"), g);
        }
    }

    #[test]
    fn wkb_rejects_arbitrary_bytes_or_parses_cleanly(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Fuzzing the decoder: it must never panic; any Ok result must
        // re-encode to a decodable value.
        use sjc_geom::wkb::{parse_wkb, to_wkb};
        if let Ok(g) = parse_wkb(&bytes) {
            let re = to_wkb(&g);
            prop_assert_eq!(parse_wkb(&re).expect("re-encode parses"), g);
        }
    }

    #[test]
    fn mbr_contains_all_linestring_vertices(l in linestring()) {
        let mbr = l.mbr();
        for p in l.points() {
            prop_assert!(mbr.contains_point(p));
        }
    }

    #[test]
    fn intersects_is_symmetric(a in geometry(), b in geometry()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn exact_intersection_implies_mbr_intersection(a in geometry(), b in geometry()) {
        if a.intersects(&b) {
            prop_assert!(a.mbr().intersects(&b.mbr()),
                "refinement hit without filter hit: {:?} {:?}", a, b);
        }
    }

    #[test]
    fn intersects_is_translation_invariant(
        a in geometry(), b in geometry(), dx in -500.0f64..500.0, dy in -500.0f64..500.0
    ) {
        // Round the shift to a power-of-two-friendly grid so f64 translation is exact.
        let dx = (dx * 16.0).round() / 16.0;
        let dy = (dy * 16.0).round() / 16.0;
        prop_assert_eq!(
            a.intersects(&b),
            a.translate(dx, dy).intersects(&b.translate(dx, dy))
        );
    }

    #[test]
    fn segment_intersection_symmetry(a in point(), b in point(), c in point(), d in point()) {
        prop_assert_eq!(
            segments_intersect(&a, &b, &c, &d),
            segments_intersect(&c, &d, &a, &b)
        );
    }

    #[test]
    fn intersection_point_lies_on_both_mbrs(a in point(), b in point(), c in point(), d in point()) {
        if let Some(ip) = segment_intersection_point(&a, &b, &c, &d) {
            let m1 = Mbr::from_points([a, b].iter());
            let m2 = Mbr::from_points([c, d].iter());
            // Allow a tiny tolerance for the division.
            prop_assert!(m1.buffered(1e-6).contains_point(&ip));
            prop_assert!(m2.buffered(1e-6).contains_point(&ip));
        }
    }

    #[test]
    fn polygon_centroid_vertex_behaviour(poly in polygon()) {
        // Every vertex of the shell is on the boundary, hence "inside".
        for v in poly.shell() {
            prop_assert!(point_in_polygon(&poly, v));
        }
        // A point far outside the MBR is never inside.
        let m = poly.mbr();
        let far = Point::new(m.max_x + 10.0, m.max_y + 10.0);
        prop_assert!(!point_in_polygon(&poly, &far));
    }

    #[test]
    fn pip_consistent_with_mbr(poly in polygon(), p in point()) {
        if point_in_polygon(&poly, &p) {
            prop_assert!(poly.mbr().contains_point(&p));
        }
    }

    #[test]
    fn distance_is_nonnegative_and_zero_on_endpoint(a in point(), b in point()) {
        prop_assert!(point_segment_distance(&a, &a, &b) <= 1e-9);
        let mid = Point::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0);
        prop_assert!(point_segment_distance(&mid, &a, &b) <= 1e-6);
    }

    #[test]
    fn mbr_union_contains_operands(
        ax in coord(), ay in coord(), bx in coord(), by in coord(),
        cx in coord(), cy in coord(), dx2 in coord(), dy2 in coord()
    ) {
        let m1 = Mbr::new(ax, ay, bx, by);
        let m2 = Mbr::new(cx, cy, dx2, dy2);
        let u = m1.union(&m2);
        prop_assert!(u.contains(&m1));
        prop_assert!(u.contains(&m2));
    }

    #[test]
    fn mbr_intersection_contained_in_both(
        ax in coord(), ay in coord(), bx in coord(), by in coord(),
        cx in coord(), cy in coord(), dx2 in coord(), dy2 in coord()
    ) {
        let m1 = Mbr::new(ax, ay, bx, by);
        let m2 = Mbr::new(cx, cy, dx2, dy2);
        let i = m1.intersection(&m2);
        if !i.is_empty() {
            prop_assert!(m1.contains(&i));
            prop_assert!(m2.contains(&i));
            prop_assert!(m1.intersects(&m2));
        } else {
            prop_assert!(!m1.intersects(&m2));
        }
    }

    #[test]
    fn reference_point_unique_and_symmetric(
        ax in coord(), ay in coord(), bx in coord(), by in coord(),
        cx in coord(), cy in coord(), dx2 in coord(), dy2 in coord()
    ) {
        let m1 = Mbr::new(ax, ay, bx, by);
        let m2 = Mbr::new(cx, cy, dx2, dy2);
        prop_assert_eq!(m1.reference_point(&m2), m2.reference_point(&m1));
        if let Some(rp) = m1.reference_point(&m2) {
            prop_assert!(m1.contains_point(&rp));
            prop_assert!(m2.contains_point(&rp));
        }
    }
}
