//! Property-based tests for the geometry engine (seeded `sjc-testkit` cases).

use sjc_geom::algorithms::{point_in_polygon, point_segment_distance};
use sjc_geom::predicates::{segment_intersection_point, segments_intersect};
use sjc_geom::wkt::{parse_wkt, to_wkt};
use sjc_geom::{Geometry, LineString, Mbr, Point, Polygon};
use sjc_testkit::{cases, TestRng};

const N: usize = 256;

fn coord(rng: &mut TestRng) -> f64 {
    // Plain decimal range, no NaN/inf; covers negative and fractional values.
    // Rounded to 1/16 so translations and comparisons stay exact in f64.
    (rng.f64_in(-1000.0..1000.0) * 16.0).round() / 16.0
}

fn point(rng: &mut TestRng) -> Point {
    let x = coord(rng);
    let y = coord(rng);
    Point::new(x, y)
}

fn linestring(rng: &mut TestRng) -> LineString {
    let n = rng.usize_in(2..12);
    LineString::new((0..n).map(|_| point(rng)).collect())
}

/// A random convex-ish polygon: points on a jittered circle, sorted by angle.
fn polygon(rng: &mut TestRng) -> Polygon {
    let center = point(rng);
    let radius = rng.f64_in(10.0..200.0);
    let n = rng.usize_in(4..12);
    let ring: Vec<Point> = (0..n)
        .map(|i| {
            let j = rng.f64_in(0.5..1.0);
            let theta = (i as f64) / (n as f64) * std::f64::consts::TAU;
            Point::new(center.x + radius * j * theta.cos(), center.y + radius * j * theta.sin())
        })
        .collect();
    Polygon::new(ring)
}

fn geometry(rng: &mut TestRng) -> Geometry {
    match rng.usize_in(0..12) {
        0..=2 => Geometry::Point(point(rng)),
        3..=5 => Geometry::LineString(linestring(rng)),
        6..=8 => Geometry::Polygon(polygon(rng)),
        9 => {
            let n = rng.usize_in(1..6);
            Geometry::MultiPoint((0..n).map(|_| point(rng)).collect())
        }
        10 => {
            let n = rng.usize_in(1..4);
            Geometry::MultiLineString((0..n).map(|_| linestring(rng)).collect())
        }
        _ => {
            let n = rng.usize_in(1..3);
            Geometry::MultiPolygon((0..n).map(|_| polygon(rng)).collect())
        }
    }
}

#[test]
fn wkt_round_trip() {
    cases(0x6E01, N, |rng| {
        let g = geometry(rng);
        let text = to_wkt(&g);
        let parsed = parse_wkt(&text).expect("writer output must parse");
        assert_eq!(parsed, g);
    });
}

#[test]
fn wkb_round_trip() {
    use sjc_geom::wkb::{parse_wkb, to_wkb};
    cases(0x6E02, N, |rng| {
        let g = geometry(rng);
        let bytes = to_wkb(&g);
        let parsed = parse_wkb(&bytes).expect("writer output must parse");
        assert_eq!(parsed, g);
    });
}

#[test]
fn wkt_parser_never_panics_on_garbage() {
    const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 (),.-";
    cases(0x6E03, N, |rng| {
        let len = rng.usize_in(0..81);
        let input: String =
            (0..len).map(|_| ALPHABET[rng.usize_in(0..ALPHABET.len())] as char).collect();
        // Fuzz: arbitrary printable input either parses (and then
        // round-trips) or errors cleanly.
        if let Ok(g) = parse_wkt(&input) {
            let re = to_wkt(&g);
            assert_eq!(parse_wkt(&re).expect("writer output parses"), g);
        }
    });
}

#[test]
fn wkb_rejects_arbitrary_bytes_or_parses_cleanly() {
    // Fuzzing the decoder: it must never panic; any Ok result must
    // re-encode to a decodable value.
    use sjc_geom::wkb::{parse_wkb, to_wkb};
    cases(0x6E04, N, |rng| {
        let len = rng.usize_in(0..200);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        if let Ok(g) = parse_wkb(&bytes) {
            let re = to_wkb(&g);
            assert_eq!(parse_wkb(&re).expect("re-encode parses"), g);
        }
    });
}

#[test]
fn mbr_contains_all_linestring_vertices() {
    cases(0x6E05, N, |rng| {
        let l = linestring(rng);
        let mbr = l.mbr();
        for p in l.points() {
            assert!(mbr.contains_point(p));
        }
    });
}

#[test]
fn intersects_is_symmetric() {
    cases(0x6E06, N, |rng| {
        let a = geometry(rng);
        let b = geometry(rng);
        assert_eq!(a.intersects(&b), b.intersects(&a));
    });
}

#[test]
fn exact_intersection_implies_mbr_intersection() {
    cases(0x6E07, N, |rng| {
        let a = geometry(rng);
        let b = geometry(rng);
        if a.intersects(&b) {
            assert!(a.mbr().intersects(&b.mbr()), "refinement hit without filter hit: {a:?} {b:?}");
        }
    });
}

#[test]
fn intersects_is_translation_invariant() {
    cases(0x6E08, N, |rng| {
        let a = geometry(rng);
        let b = geometry(rng);
        // Round the shift to a power-of-two-friendly grid so f64 translation is exact.
        let dx = (rng.f64_in(-500.0..500.0) * 16.0).round() / 16.0;
        let dy = (rng.f64_in(-500.0..500.0) * 16.0).round() / 16.0;
        assert_eq!(a.intersects(&b), a.translate(dx, dy).intersects(&b.translate(dx, dy)));
    });
}

#[test]
fn segment_intersection_symmetry() {
    cases(0x6E09, N, |rng| {
        let (a, b, c, d) = (point(rng), point(rng), point(rng), point(rng));
        assert_eq!(segments_intersect(&a, &b, &c, &d), segments_intersect(&c, &d, &a, &b));
    });
}

#[test]
fn intersection_point_lies_on_both_mbrs() {
    cases(0x6E0A, N, |rng| {
        let (a, b, c, d) = (point(rng), point(rng), point(rng), point(rng));
        if let Some(ip) = segment_intersection_point(&a, &b, &c, &d) {
            let m1 = Mbr::from_points([a, b].iter());
            let m2 = Mbr::from_points([c, d].iter());
            // Allow a tiny tolerance for the division.
            assert!(m1.buffered(1e-6).contains_point(&ip));
            assert!(m2.buffered(1e-6).contains_point(&ip));
        }
    });
}

#[test]
fn polygon_centroid_vertex_behaviour() {
    cases(0x6E0B, N, |rng| {
        let poly = polygon(rng);
        // Every vertex of the shell is on the boundary, hence "inside".
        for v in poly.shell() {
            assert!(point_in_polygon(&poly, v));
        }
        // A point far outside the MBR is never inside.
        let m = poly.mbr();
        let far = Point::new(m.max_x + 10.0, m.max_y + 10.0);
        assert!(!point_in_polygon(&poly, &far));
    });
}

#[test]
fn pip_consistent_with_mbr() {
    cases(0x6E0C, N, |rng| {
        let poly = polygon(rng);
        let p = point(rng);
        if point_in_polygon(&poly, &p) {
            assert!(poly.mbr().contains_point(&p));
        }
    });
}

#[test]
fn distance_is_nonnegative_and_zero_on_endpoint() {
    cases(0x6E0D, N, |rng| {
        let a = point(rng);
        let b = point(rng);
        assert!(point_segment_distance(&a, &a, &b) <= 1e-9);
        let mid = Point::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0);
        assert!(point_segment_distance(&mid, &a, &b) <= 1e-6);
    });
}

#[test]
fn mbr_union_contains_operands() {
    cases(0x6E0E, N, |rng| {
        let m1 = Mbr::new(coord(rng), coord(rng), coord(rng), coord(rng));
        let m2 = Mbr::new(coord(rng), coord(rng), coord(rng), coord(rng));
        let u = m1.union(&m2);
        assert!(u.contains(&m1));
        assert!(u.contains(&m2));
    });
}

#[test]
fn mbr_intersection_contained_in_both() {
    cases(0x6E0F, N, |rng| {
        let m1 = Mbr::new(coord(rng), coord(rng), coord(rng), coord(rng));
        let m2 = Mbr::new(coord(rng), coord(rng), coord(rng), coord(rng));
        let i = m1.intersection(&m2);
        if !i.is_empty() {
            assert!(m1.contains(&i));
            assert!(m2.contains(&i));
            assert!(m1.intersects(&m2));
        } else {
            assert!(!m1.intersects(&m2));
        }
    });
}

#[test]
fn reference_point_unique_and_symmetric() {
    cases(0x6E10, N, |rng| {
        let m1 = Mbr::new(coord(rng), coord(rng), coord(rng), coord(rng));
        let m2 = Mbr::new(coord(rng), coord(rng), coord(rng), coord(rng));
        assert_eq!(m1.reference_point(&m2), m2.reference_point(&m1));
        if let Some(rp) = m1.reference_point(&m2) {
            assert!(m1.contains_point(&rp));
            assert!(m2.contains_point(&rp));
        }
    });
}
