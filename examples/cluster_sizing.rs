//! Capacity planning: how many EC2 nodes does a full-scale join need?
//!
//! ```text
//! cargo run --release --example cluster_sizing
//! ```
//!
//! Sweeps the cluster size for the paper's two full-scale workloads and
//! reports, per size, whether SpatialSpark fits in memory (and how fast it
//! is when it does) next to SpatialHadoop's always-works baseline — the
//! operational question Table 2's failures pose: "the cheapest cluster that
//! still runs my join in memory".

use sjc_cluster::{Cluster, ClusterConfig};
use sjc_core::experiment::Workload;
use sjc_core::framework::{DistributedSpatialJoin, JoinPredicate};
use sjc_core::spatialhadoop::SpatialHadoop;
use sjc_core::spatialspark::SpatialSpark;

fn main() {
    let scale = 1e-3;
    for w in [Workload::taxi_nycb(), Workload::edge_linearwater()] {
        let (l, r) = w.prepare(scale, 20150701);
        println!("\n=== {} (full-scale equivalent) ===", w.name);
        println!(
            "{:>6} {:>12} {:>22} {:>22}",
            "nodes", "agg. memory", "SpatialSpark", "SpatialHadoop"
        );
        for n in [4u32, 6, 8, 9, 10, 12, 16] {
            let cfg = ClusterConfig::ec2(n);
            let agg_gb = (cfg.nodes as u64 * cfg.node.memory_bytes) >> 30;
            let cluster = Cluster::new(cfg);
            let spark = SpatialSpark::default().run(&cluster, &l, &r, JoinPredicate::Intersects);
            let hadoop = SpatialHadoop::default()
                .run(&cluster, &l, &r, JoinPredicate::Intersects)
                .expect("SpatialHadoop always completes");
            let spark_cell = match spark {
                Ok(out) => format!("{:.0} s", out.trace.total_seconds()),
                Err(e) => format!("({})", e.kind()),
            };
            println!(
                "{:>6} {:>9} GB {:>22} {:>19.0} s",
                n,
                agg_gb,
                spark_cell,
                hadoop.trace.total_seconds()
            );
        }
    }
    println!(
        "\nReading: below the memory threshold SpatialSpark dies (\"Spark is not able to \
         spill\"); above it, it beats SpatialHadoop — the paper's robustness-vs-efficiency \
         trade-off as a sizing chart."
    );
}
