//! The paper's motivating example: "matching taxi pickup/drop-off locations
//! with road segments through point-to-nearest-polyline distance
//! computation".
//!
//! ```text
//! cargo run --release --example nearest_road
//! ```
//!
//! Two ways to solve it with this library:
//!
//! 1. a **within-distance join** through a full distributed system
//!    (`JoinPredicate::WithinDistance`), then picking the closest candidate
//!    per point;
//! 2. a direct **k-nearest-neighbour probe** against an R-tree of road
//!    MBRs, refined with exact point-to-polyline distance.
//!
//! Both must agree on the nearest road for every matched point.

use sjc_cluster::{Cluster, ClusterConfig};
use sjc_core::framework::{DistributedSpatialJoin, GeoRecord, JoinInput, JoinPredicate};
use sjc_core::spatialspark::SpatialSpark;
use sjc_data::{DatasetId, ScaledDataset};
use sjc_geom::{Geometry, Point};
use sjc_index::entry::IndexEntry;
use sjc_index::RTree;
use std::collections::HashMap;

fn main() {
    // Roads (TIGER edges) and pickup points over the same domain.
    let roads_ds = ScaledDataset::generate(DatasetId::Edges01, 2e-4, 99);
    let mut roads = JoinInput::from_dataset(&roads_ds);
    roads.multiplier = 1.0;

    // Generate pickups inside the road domain.
    let n_points = 2_000usize;
    let d = roads.domain;
    let pickups: Vec<GeoRecord> = (0..n_points)
        .map(|i| {
            let fx = (i as f64 * 0.754_877_666_2) % 1.0; // low-discrepancy
            let fy = (i as f64 * 0.569_840_290_9) % 1.0;
            GeoRecord::new(
                i as u64,
                Geometry::Point(Point::new(d.min_x + fx * d.width(), d.min_y + fy * d.height())),
            )
        })
        .collect();
    let points_input = JoinInput {
        name: "pickups".into(),
        records: pickups.clone(),
        sim_bytes: n_points as u64 * 41,
        multiplier: 1.0,
        domain: d,
    };

    // Method 1: within-distance join (radius = 1% of the domain side),
    // then nearest per point.
    let radius = d.width() * 0.01;
    let cluster = Cluster::new(ClusterConfig::workstation());
    let out = SpatialSpark::default()
        .run(&cluster, &points_input, &roads, JoinPredicate::WithinDistance(radius))
        .expect("join runs");
    let mut nearest_via_join: HashMap<u64, (u64, f64)> = HashMap::new();
    for &(pid, rid) in &out.pairs {
        let p = match &pickups[pid as usize].geom {
            Geometry::Point(p) => *p,
            _ => unreachable!(),
        };
        let dist =
            roads.records[rid as usize].geom.distance_to_point(&p).expect("polyline distance");
        nearest_via_join
            .entry(pid)
            .and_modify(|best| {
                if dist < best.1 {
                    *best = (rid, dist);
                }
            })
            .or_insert((rid, dist));
    }

    // Method 2: kNN probe against an R-tree of road MBRs + exact refine.
    let tree =
        RTree::bulk_load_str(roads.records.iter().map(|r| IndexEntry::new(r.id, r.mbr)).collect());
    let mut agree = 0usize;
    let mut checked = 0usize;
    for (pid, &(join_rid, join_d)) in &nearest_via_join {
        let p = match &pickups[*pid as usize].geom {
            Geometry::Point(p) => p,
            _ => unreachable!(),
        };
        // MBR distance lower-bounds exact distance: fetch a generous k and
        // refine exactly.
        let candidates = tree.nearest_neighbors(p, 24);
        let best = candidates
            .iter()
            .map(|&(rid, _)| {
                let d = roads.records[rid as usize].geom.distance_to_point(p).unwrap();
                (rid, d)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        checked += 1;
        if best.0 == join_rid || (best.1 - join_d).abs() < 1e-9 {
            agree += 1;
        }
    }

    println!("pickups: {n_points}   roads: {}   radius: {:.0} m", roads.records.len(), radius);
    println!(
        "within-distance join matched {} pickups to a road ({:.1}%)",
        nearest_via_join.len(),
        100.0 * nearest_via_join.len() as f64 / n_points as f64
    );
    println!("kNN probe agreement on the nearest road: {agree}/{checked}");
    assert_eq!(agree, checked, "the two methods must agree");

    // A small distance histogram for flavour.
    let mut hist = [0usize; 5];
    for &(_, dist) in nearest_via_join.values() {
        let bucket = ((dist / radius) * 5.0).min(4.0) as usize;
        hist[bucket] += 1;
    }
    println!("\ndistance-to-road distribution (of matched pickups):");
    for (i, c) in hist.iter().enumerate() {
        let lo = i as f64 * radius / 5.0;
        let hi = (i + 1) as f64 * radius / 5.0;
        println!("  {lo:>6.0}–{hi:<6.0} m {c:>6}  {}", "#".repeat(c * 40 / n_points.max(1)));
    }
}
