//! Profile the synthetic datasets: verify their spatial character matches
//! what the paper's analysis assumes about the real data.
//!
//! ```text
//! cargo run --release --example profile_datasets [scale]
//! ```
//!
//! Prints, per dataset: record/vertex/byte statistics, occupancy skew
//! (taxi must be hotspot-skewed, TIGER roads near-uniform), plus two
//! what-if numbers — how much volume Douglas–Peucker simplification would
//! save, and how partition clipping compares with record duplication.

use sjc_data::{DatasetId, DatasetProfile, ScaledDataset};
use sjc_geom::algorithms::{clip_linestring, simplify};
use sjc_geom::{Geometry, Mbr};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1e-3);

    println!(
        "{:<16} {:>9} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "dataset", "records", "avg verts", "avg bytes", "skew", "empty%", "rel.area"
    );
    for id in DatasetId::all() {
        let ds = ScaledDataset::generate(id, scale, 20150701);
        let p = DatasetProfile::compute(&ds.geoms, 16);
        println!(
            "{:<16} {:>9} {:>10.1} {:>10.0} {:>10.1} {:>7.0}% {:>8.2e}",
            ds.spec.name,
            p.records,
            p.avg_vertices,
            p.avg_wkt_bytes,
            p.occupancy_skew,
            p.empty_cell_fraction * 100.0,
            p.relative_mbr_area,
        );
    }

    // What-if 1: simplify the water polylines at increasing tolerances.
    let water = ScaledDataset::generate(DatasetId::Linearwater01, scale, 20150701);
    let original_verts: usize = water.geoms.iter().map(Geometry::num_vertices).sum();
    println!("\nDouglas–Peucker on linearwater0.1 ({original_verts} vertices):");
    for tol_frac in [1e-5, 1e-4, 1e-3] {
        let tol = water.domain.width() * tol_frac;
        let kept: usize = water
            .geoms
            .iter()
            .map(|g| match g {
                Geometry::LineString(l) => simplify(l, tol).num_points(),
                other => other.num_vertices(),
            })
            .sum();
        println!(
            "  tolerance {:>8.1} m: {:>7} vertices kept ({:>4.1}%)",
            tol,
            kept,
            100.0 * kept as f64 / original_verts as f64
        );
    }

    // What-if 2: duplication vs clipping at partition boundaries.
    let edges = ScaledDataset::generate(DatasetId::Edges01, scale, 20150701);
    let grid = 8usize;
    let d = edges.domain;
    let (w, h) = (d.width() / grid as f64, d.height() / grid as f64);
    let mut duplicated = 0usize;
    let mut clipped_fragments = 0usize;
    for g in &edges.geoms {
        if let Geometry::LineString(l) = g {
            let mbr = l.mbr();
            let c0 = ((mbr.min_x - d.min_x) / w) as usize;
            let c1 = ((mbr.max_x - d.min_x) / w) as usize;
            let r0 = ((mbr.min_y - d.min_y) / h) as usize;
            let r1 = ((mbr.max_y - d.min_y) / h) as usize;
            for r in r0..=r1.min(grid - 1) {
                for c in c0..=c1.min(grid - 1) {
                    let cell = Mbr::new(
                        d.min_x + c as f64 * w,
                        d.min_y + r as f64 * h,
                        d.min_x + (c + 1) as f64 * w,
                        d.min_y + (r + 1) as f64 * h,
                    );
                    if cell.intersects(&mbr) {
                        duplicated += 1;
                        clipped_fragments += clip_linestring(l, &cell).len();
                    }
                }
            }
        }
    }
    println!(
        "\npartitioning edges0.1 on an {grid}x{grid} grid: {} records become {} duplicated \
         copies, or {} clipped fragments",
        edges.len(),
        duplicated,
        clipped_fragments
    );
    println!(
        "(duplication factor {:.2}; clipping trades {:.1}% of the copies for boundary bookkeeping)",
        duplicated as f64 / edges.len() as f64,
        100.0 * (1.0 - clipped_fragments as f64 / duplicated as f64)
    );
}
