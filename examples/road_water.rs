//! Road–water scenario: the paper's second experiment (polyline ⋈ polyline).
//!
//! ```text
//! cargo run --release --example road_water [scale]
//! ```
//!
//! Finds road segments crossing water features (bridge/culvert candidates)
//! with the SpatialHadoop reproduction, comparing its two local-join
//! algorithms and showing the MBR-filter vs exact-refinement funnel.

use sjc_cluster::{Cluster, ClusterConfig};
use sjc_core::common::{local_join, LocalJoinAlgo};
use sjc_core::experiment::Workload;
use sjc_core::framework::{DistributedSpatialJoin, GeoRecord, JoinPredicate};
use sjc_core::spatialhadoop::SpatialHadoop;
use sjc_geom::GeometryEngine;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2e-4);
    let (mut roads, mut waters) = Workload::edge01_linearwater01().prepare(scale, 7);
    roads.multiplier = 1.0;
    waters.multiplier = 1.0;
    println!("road edges: {}   water features: {}\n", roads.records.len(), waters.records.len());

    // The filter/refinement funnel on the whole dataset (what each local
    // join does inside a partition).
    let jts = GeometryEngine::jts();
    let l: Vec<&GeoRecord> = roads.records.iter().collect();
    let r: Vec<&GeoRecord> = waters.records.iter().collect();
    println!("local join funnel ({} x {} records):", l.len(), r.len());
    println!("{:<20} {:>12} {:>12} {:>14}", "algorithm", "candidates", "crossings", "false pos.");
    for algo in
        [LocalJoinAlgo::PlaneSweep, LocalJoinAlgo::SyncRTree, LocalJoinAlgo::IndexedNestedLoop]
    {
        let (pairs, cost) = local_join(&jts, JoinPredicate::Intersects, algo, &l, &r, |_, _| true);
        println!(
            "{:<20} {:>12} {:>12} {:>14}",
            format!("{algo:?}"),
            cost.candidates,
            pairs.len(),
            cost.candidates - cost.results,
        );
    }

    // The same join end-to-end through the distributed system, on two
    // hardware configurations.
    println!("\nend-to-end through SpatialHadoop:");
    for cfg in [ClusterConfig::workstation(), ClusterConfig::ec2(10)] {
        let cluster = Cluster::new(cfg);
        let out = SpatialHadoop::default()
            .run(&cluster, &roads, &waters, JoinPredicate::Intersects)
            .expect("SpatialHadoop is the robust one");
        println!(
            "  {:<8} {:>8} crossings in {:>8.1} simulated s  ({} stages)",
            cluster.config.name,
            out.pairs.len(),
            out.trace.total_seconds(),
            out.trace.stages.len()
        );
    }
}
