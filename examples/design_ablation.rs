//! Design-choice ablations: flip one choice at a time on shared substrates.
//!
//! ```text
//! cargo run --release --example design_ablation [scale]
//! ```
//!
//! The paper compares whole systems, so its numbers blend platform, access
//! model, geometry library and join algorithm. Because this reproduction
//! runs all three systems on the same substrates, each factor can be
//! isolated — these are the experiments §II reasons about but never runs.

use sjc_core::ablation;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5e-4);
    let seed = 20150701;

    println!("Design-choice ablations (simulated seconds; scale {scale:.0e})\n");
    print!(
        "{}",
        ablation::format_rows(
            "geometry engine — same pipeline, JTS vs GEOS",
            &ablation::geometry_engine(scale, seed)
        )
    );
    println!();
    print!(
        "{}",
        ablation::format_rows(
            "data access model — same engine, streaming vs native",
            &ablation::access_model(scale, seed)
        )
    );
    println!();
    print!(
        "{}",
        ablation::format_rows(
            "local join algorithm (SpatialHadoop)",
            &ablation::local_join_algo(scale, seed)
        )
    );
    println!();
    print!(
        "{}",
        ablation::format_rows(
            "broadcast vs partition join (SpatialSpark)",
            &ablation::broadcast_join(scale, seed)
        )
    );
    println!();
    print!(
        "{}",
        ablation::format_rows(
            "partition-count sweep (SpatialSpark on EC2-10)",
            &ablation::partition_sweep(scale, seed)
        )
    );
    println!();
    print!(
        "{}",
        ablation::format_rows(
            "partitioner family (SpatialHadoop)",
            &ablation::partitioner_kind(scale, seed)
        )
    );
}
