//! Fault tolerance: how each system degrades (or dies) as faults ramp up.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```
//!
//! Runs the taxi1m ⋈ nycb workload through all three systems on a simulated
//! 8-node EC2 cluster under increasingly hostile fault plans — none, light
//! (2% disk errors, 5% stragglers), heavy (8% / 15% + a mid-run node crash)
//! — and prints the degradation table plus each faulted run's recovery
//! ledger. The paper's robustness story becomes quantitative: Hadoop
//! re-executes single tasks, Spark recomputes lineage, and the join results
//! stay identical whenever a run survives.

use sjc_cluster::{Cluster, ClusterConfig, FaultPlan};
use sjc_core::experiment::{SystemKind, Workload};
use sjc_core::framework::{JoinInput, JoinPredicate};
use sjc_core::report::recovery_string;

fn main() {
    let (mut left, mut right): (JoinInput, JoinInput) = Workload::taxi1m_nycb().prepare(1e-4, 42);
    // Run the generated slice as-is (multiplier 1): at full-scale
    // extrapolation HadoopGIS breaks its reducer pipes before any fault is
    // injected, which is Table 2's story, not this example's.
    left.multiplier = 1.0;
    right.multiplier = 1.0;
    let config = ClusterConfig::ec2(8);
    println!(
        "workload: {} pickup points x {} census blocks on {}\n",
        left.records.len(),
        right.records.len(),
        config.name,
    );

    println!(
        "{:<16} {:>10} {:>10} {:>10}   (end-to-end simulated seconds; '-' = failed)",
        "system", "none", "light", "heavy"
    );
    let mut ledger_traces = Vec::new();
    for sys in SystemKind::all() {
        print!("{:<16}", sys.paper_name());
        // Each system's heavy plan crashes node 2 at 40% of that system's
        // own fault-free runtime, so the crash lands mid-wave for everyone
        // (a fixed instant would fall inside one system's 15 s job startup
        // and after another system already finished).
        let clean = Cluster::new(config.clone());
        let base = sys
            .instance()
            .run(&clean, &left, &right, JoinPredicate::Intersects)
            .expect("fault-free baseline must succeed")
            .trace
            .total_ns();
        let plans: [(&str, FaultPlan); 3] = [
            ("none", FaultPlan::none()),
            ("light", FaultPlan::light(7, &config)),
            ("heavy", FaultPlan::heavy(7, &config).crash_at(2, base * 2 / 5)),
        ];
        let mut baseline_pairs: Option<Vec<(u64, u64)>> = None;
        for (label, plan) in &plans {
            let cluster = Cluster::with_faults(config.clone(), plan.clone());
            match sys.instance().run(&cluster, &left, &right, JoinPredicate::Intersects) {
                Ok(out) => {
                    print!(" {:>10.1}", out.trace.total_seconds());
                    let pairs = out.clone().sorted_pairs();
                    match &baseline_pairs {
                        None => baseline_pairs = Some(pairs),
                        Some(base) => assert_eq!(
                            base,
                            &pairs,
                            "{} results changed under the {label} plan",
                            sys.paper_name()
                        ),
                    }
                    if *label == "heavy" {
                        let mut t = out.trace;
                        t.system = format!("{} (heavy faults)", sys.paper_name());
                        ledger_traces.push(t);
                    }
                }
                Err(e) => print!(" {:>10}", format!("- ({})", e.kind())),
            }
        }
        println!();
    }

    println!("\n{}", recovery_string(&ledger_traces));
    println!("surviving runs produced identical join results under every fault plan");
}
