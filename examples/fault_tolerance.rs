//! Fault tolerance: how each system degrades (or dies) as faults ramp up.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```
//!
//! Runs the taxi1m ⋈ nycb workload through all three systems on a simulated
//! 8-node EC2 cluster under increasingly hostile fault plans — none, light
//! (2% disk errors, 5% stragglers), heavy (8% / 15% + a mid-run node crash)
//! — and prints the degradation table plus each faulted run's recovery
//! ledger. The paper's robustness story becomes quantitative: Hadoop
//! re-executes single tasks, Spark recomputes lineage, and the join results
//! stay identical whenever a run survives.

use sjc_cluster::{Cluster, ClusterConfig, FaultPlan, RecoveryKind, DEFAULT_PROVISION_DELAY_NS};
use sjc_core::experiment::{SystemKind, Workload};
use sjc_core::framework::{JoinInput, JoinPredicate};
use sjc_core::report::recovery_string;

fn main() {
    let (mut left, mut right): (JoinInput, JoinInput) = Workload::taxi1m_nycb().prepare(1e-4, 42);
    // Run the generated slice as-is (multiplier 1): at full-scale
    // extrapolation HadoopGIS breaks its reducer pipes before any fault is
    // injected, which is Table 2's story, not this example's.
    left.multiplier = 1.0;
    right.multiplier = 1.0;
    let config = ClusterConfig::ec2(8);
    println!(
        "workload: {} pickup points x {} census blocks on {}\n",
        left.records.len(),
        right.records.len(),
        config.name,
    );

    println!(
        "{:<16} {:>10} {:>10} {:>10}   (end-to-end simulated seconds; '-' = failed)",
        "system", "none", "light", "heavy"
    );
    let mut ledger_traces = Vec::new();
    for sys in SystemKind::all() {
        print!("{:<16}", sys.paper_name());
        // Each system's heavy plan crashes node 2 at 40% of that system's
        // own fault-free runtime, so the crash lands mid-wave for everyone
        // (a fixed instant would fall inside one system's 15 s job startup
        // and after another system already finished).
        let clean = Cluster::new(config.clone());
        let base = sys
            .instance()
            .run(&clean, &left, &right, JoinPredicate::Intersects)
            .expect("fault-free baseline must succeed")
            .trace
            .total_ns();
        let plans: [(&str, FaultPlan); 3] = [
            ("none", FaultPlan::none()),
            ("light", FaultPlan::light(7, &config)),
            ("heavy", FaultPlan::heavy(7, &config).crash_at(2, base * 2 / 5)),
        ];
        let mut baseline_pairs: Option<Vec<(u64, u64)>> = None;
        for (label, plan) in &plans {
            let cluster = Cluster::with_faults(config.clone(), plan.clone());
            match sys.instance().run(&cluster, &left, &right, JoinPredicate::Intersects) {
                Ok(out) => {
                    print!(" {:>10.1}", out.trace.total_seconds());
                    let pairs = out.clone().sorted_pairs();
                    match &baseline_pairs {
                        None => baseline_pairs = Some(pairs),
                        Some(base) => assert_eq!(
                            base,
                            &pairs,
                            "{} results changed under the {label} plan",
                            sys.paper_name()
                        ),
                    }
                    if *label == "heavy" {
                        let mut t = out.trace;
                        t.system = format!("{} (heavy faults)", sys.paper_name());
                        ledger_traces.push(t);
                    }
                }
                Err(e) => print!(" {:>10}", format!("- ({})", e.kind())),
            }
        }
        println!();
    }

    println!("\n{}", recovery_string(&ledger_traces));
    println!("surviving runs produced identical join results under every fault plan");

    // Checkpoint-interval axis: the heavy disk-error/straggler mix with the
    // crash moved to 70% of each system's fault-free runtime — late enough
    // that completed work is resident on the dead node — now with durable
    // checkpoints every 2 waves / every wave plus elastic node replacement
    // on a 4 s container-respawn provisioning base (the 30 s
    // DEFAULT_PROVISION_DELAY_NS models a full EC2 instance launch and lands
    // after the short runs here finish). Fault-free cost rises (the writes
    // are charged), recovery cost falls (lineage truncates, the dead node's
    // share is re-read, the replacement wins slots back).
    println!(
        "\ncheckpoint tradeoff, heavy plan, crash at 70% (interval in completed waves/stages):\n\
         {:<16} {:>10} {:>10} {:>10} {:>13} {:>11}",
        "system", "no-ckpt", "every-2", "every-1", "ckpt-write ms", "reread KB"
    );
    for sys in SystemKind::all() {
        let clean = Cluster::new(config.clone());
        let base = sys
            .instance()
            .run(&clean, &left, &right, JoinPredicate::Intersects)
            .expect("fault-free baseline must succeed")
            .trace
            .total_ns();
        let heavy = || FaultPlan::heavy(7, &config).crash_at(2, base * 7 / 10);
        let provision = DEFAULT_PROVISION_DELAY_NS / 7; // ~4.3 s container respawn
        let plans: [FaultPlan; 3] = [
            heavy(),
            heavy().with_checkpoints(2, 3).with_elastic_provisioning(provision),
            heavy().with_checkpoints(1, 3).with_elastic_provisioning(provision),
        ];
        print!("{:<16}", sys.paper_name());
        let mut last_trace = None;
        for plan in plans {
            let cluster = Cluster::with_faults(config.clone(), plan);
            match sys.instance().run(&cluster, &left, &right, JoinPredicate::Intersects) {
                Ok(out) => {
                    print!(" {:>10.2}", out.trace.total_seconds());
                    last_trace = Some(out.trace);
                }
                Err(e) => print!(" {:>10}", format!("- ({})", e.kind())),
            }
        }
        match last_trace {
            Some(t) => {
                let write_ns: u64 = t
                    .recovery
                    .iter()
                    .filter(|e| matches!(e.kind, RecoveryKind::CheckpointWrite { .. }))
                    .map(|e| e.wasted_ns)
                    .sum();
                let restored: u64 = t
                    .recovery
                    .iter()
                    .filter_map(|e| match e.kind {
                        RecoveryKind::CheckpointRestore { bytes } => Some(bytes),
                        _ => None,
                    })
                    .sum();
                println!(" {:>13.1} {:>11.1}", write_ns as f64 / 1e6, restored as f64 / 1e3);
            }
            None => println!(),
        }
    }
    println!("\nwrite overhead buys shorter recovery: the every-wave column pays the most");
    println!("checkpoint-write time yet truncates the deepest lineage replay, and the");
    println!("provisioned replacement node wins the crashed slots back mid-run");
}
