//! Quickstart: run one distributed spatial join on a simulated cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small taxi-pickups × census-blocks workload, runs it through
//! the SpatialSpark reproduction on a simulated 10-node EC2 cluster, and
//! prints the result count plus the per-stage execution trace.

use sjc_cluster::{Cluster, ClusterConfig};
use sjc_core::experiment::Workload;
use sjc_core::framework::{DistributedSpatialJoin, JoinInput, JoinPredicate};
use sjc_core::report::fig1_string;
use sjc_core::spatialspark::SpatialSpark;

fn main() {
    // 1. A workload: the paper's taxi1m ⋈ nycb point-in-polygon join,
    //    generated synthetically at 1/10000 of full scale.
    let (left, right): (JoinInput, JoinInput) = Workload::taxi1m_nycb().prepare(1e-4, 42);
    println!(
        "generated {} pickup points and {} census blocks (full-scale equivalent: {} x {})",
        left.records.len(),
        right.records.len(),
        left.records.len() as f64 * left.multiplier,
        right.records.len() as f64 * right.multiplier,
    );

    // 2. A simulated cluster: 10 EC2 nodes of 8 vCPUs / 15 GB.
    let cluster = Cluster::new(ClusterConfig::ec2(10));

    // 3. A system: SpatialSpark with its default (paper) configuration.
    let system = SpatialSpark::default();

    // 4. Run the join.
    match system.run(&cluster, &left, &right, JoinPredicate::Intersects) {
        Ok(output) => {
            println!(
                "\n{} produced {} (point, polygon) result pairs in {:.1} simulated seconds\n",
                system.name(),
                output.pairs.len(),
                output.trace.total_seconds()
            );
            println!("{}", fig1_string(std::slice::from_ref(&output.trace)));
            println!("{}", output.trace.timeline_string(50));
        }
        Err(e) => {
            println!("run failed: {e}");
        }
    }
}
