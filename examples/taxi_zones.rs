//! Taxi-zones scenario: the paper's first experiment as a user would run it.
//!
//! ```text
//! cargo run --release --example taxi_zones [scale]
//! ```
//!
//! Assigns synthetic taxi pickups to census blocks (point-in-polygon) with
//! all three reproduced systems on the workstation configuration, prints
//! the comparison table and a histogram of pickups per block — the kind of
//! downstream analysis the join exists to feed.

use std::collections::HashMap;

use sjc_cluster::{Cluster, ClusterConfig};
use sjc_core::experiment::Workload;
use sjc_core::framework::{DistributedSpatialJoin, JoinPredicate};
use sjc_core::hadoopgis::HadoopGis;
use sjc_core::spatialhadoop::SpatialHadoop;
use sjc_core::spatialspark::SpatialSpark;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1e-4);
    let (mut left, mut right) = Workload::taxi1m_nycb().prepare(scale, 2026);
    // Run the generated slice as-is (no full-scale extrapolation): this
    // example is about using the join, not about reproducing Table 3.
    left.multiplier = 1.0;
    right.multiplier = 1.0;
    println!("taxi pickups: {}   census blocks: {}\n", left.records.len(), right.records.len());

    let cluster = Cluster::new(ClusterConfig::workstation());
    let systems: Vec<Box<dyn DistributedSpatialJoin>> = vec![
        Box::new(HadoopGis::default()),
        Box::new(SpatialHadoop::default()),
        Box::new(SpatialSpark::default()),
    ];

    println!("{:<16} {:>12} {:>14}", "system", "pairs", "simulated s");
    let mut per_block: HashMap<u64, usize> = HashMap::new();
    for sys in &systems {
        match sys.run(&cluster, &left, &right, JoinPredicate::Intersects) {
            Ok(out) => {
                println!(
                    "{:<16} {:>12} {:>14.1}",
                    sys.name(),
                    out.pairs.len(),
                    out.trace.total_seconds()
                );
                per_block = out.pairs.iter().fold(HashMap::new(), |mut m, &(_, b)| {
                    *m.entry(b).or_default() += 1;
                    m
                });
            }
            Err(e) => println!("{:<16} failed: {e}", sys.name()),
        }
    }

    // Downstream analysis: which blocks are the busiest pickup zones?
    let mut counts: Vec<(u64, usize)> = per_block.into_iter().collect();
    counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("\nbusiest census blocks (block id, pickups, bar):");
    let max = counts.first().map(|&(_, c)| c).unwrap_or(1);
    for (block, c) in counts.iter().take(10) {
        let bar = "#".repeat((c * 40 / max).max(1));
        println!("  block {block:>6} {c:>8}  {bar}");
    }
    let assigned: usize = counts.iter().map(|&(_, c)| c).sum();
    println!(
        "\n{assigned} of {} pickups fall inside a block ({:.1}%) — the gaps are streets.",
        left.records.len(),
        100.0 * assigned as f64 / left.records.len() as f64
    );
}
