//! # spatial-join-cloud — umbrella crate
//!
//! Re-exports the full workspace public API of the ICPP 2015 reproduction
//! *"Spatial Join Query Processing in Cloud: Analyzing Design Choices and
//! Performance Comparisons"*. The root package also hosts the workspace-level
//! integration tests (`tests/`) and runnable examples (`examples/`).
//!
//! Start with [`core`] (the generalized framework and the three system
//! implementations) and [`data`] (synthetic dataset generators), then see the
//! `reproduce` binary in `crates/bench` for the full table/figure harness.

pub use sjc_cluster as cluster;
pub use sjc_core as core;
pub use sjc_data as data;
pub use sjc_geom as geom;
pub use sjc_index as index;
pub use sjc_mapreduce as mapreduce;
pub use sjc_rdd as rdd;
