//! Cross-system correctness: the three reproduced systems are *different
//! designs computing the same join* — on identical inputs they must produce
//! identical result pair sets, for every workload and predicate.

use sjc_cluster::{Cluster, ClusterConfig};
use sjc_core::common::direct_join;
use sjc_core::experiment::Workload;
use sjc_core::framework::{DistributedSpatialJoin, JoinInput, JoinPredicate};
use sjc_core::hadoopgis::HadoopGis;
use sjc_core::spatialhadoop::SpatialHadoop;
use sjc_core::spatialspark::SpatialSpark;
use sjc_geom::GeometryEngine;

/// Prepares a workload slice small enough for exhaustive comparison, with
/// multiplier pinned to 1 so no failure mechanism triggers.
fn prepare(w: Workload, scale: f64, seed: u64) -> (JoinInput, JoinInput) {
    let (mut l, mut r) = w.prepare(scale, seed);
    l.multiplier = 1.0;
    r.multiplier = 1.0;
    (l, r)
}

fn systems() -> Vec<Box<dyn DistributedSpatialJoin>> {
    vec![
        Box::new(HadoopGis::default()),
        Box::new(SpatialHadoop::default()),
        Box::new(SpatialHadoop { reuse_partitions: true, ..SpatialHadoop::default() }),
        Box::new(SpatialSpark::default()),
        Box::new(SpatialSpark { broadcast_join: true, ..SpatialSpark::default() }),
        Box::new(sjc_core::lde::LdeEngine::default()),
    ]
}

fn assert_all_agree(w: Workload, predicate: JoinPredicate, scale: f64, seed: u64) {
    let (l, r) = prepare(w, scale, seed);
    let cluster = Cluster::new(ClusterConfig::workstation());
    let mut expected = direct_join(&GeometryEngine::jts(), predicate, &l.records, &r.records);
    expected.sort_unstable();
    assert!(
        !expected.is_empty(),
        "{}: workload must produce results for the test to be meaningful",
        w.name
    );
    for sys in systems() {
        let out = sys
            .run(&cluster, &l, &r, predicate)
            .unwrap_or_else(|e| panic!("{} failed on {}: {e}", sys.name(), w.name));
        assert_eq!(
            out.sorted_pairs(),
            expected,
            "{} disagrees with the direct join on {}",
            sys.name(),
            w.name
        );
    }
}

#[test]
fn point_in_polygon_workload() {
    assert_all_agree(Workload::taxi1m_nycb(), JoinPredicate::Intersects, 3e-4, 11);
}

#[test]
fn polyline_intersection_workload() {
    assert_all_agree(Workload::edge01_linearwater01(), JoinPredicate::Intersects, 3e-4, 11);
}

#[test]
fn within_predicate() {
    assert_all_agree(Workload::taxi1m_nycb(), JoinPredicate::Within, 2e-4, 13);
}

#[test]
fn within_distance_predicate() {
    // Points within 150 m of a road edge — the paper's motivating
    // taxi-to-road matching example.
    let (mut l, _) = Workload::taxi1m_nycb().prepare(2e-4, 17);
    // Swap the polygon side for TIGER edges to make a point-to-polyline join.
    let edges = sjc_data::ScaledDataset::generate(sjc_data::DatasetId::Edges01, 2e-4, 17);
    let mut r = JoinInput::from_dataset(&edges);
    // The NYC and TIGER domains differ; translate the points into the TIGER
    // domain's lower corner so the join has hits.
    for rec in &mut l.records {
        let scale_x = r.domain.width() / l.domain.width();
        let g = rec.geom.translate(0.0, 0.0);
        // Re-scale point coordinates into the right domain.
        if let sjc_geom::Geometry::Point(p) = g {
            let np = sjc_geom::Point::new(
                r.domain.min_x + (p.x - l.domain.min_x) * scale_x,
                r.domain.min_y + (p.y - l.domain.min_y) * scale_x,
            );
            *rec = sjc_core::framework::GeoRecord::new(rec.id, sjc_geom::Geometry::Point(np));
        }
    }
    l.domain = r.domain;
    l.multiplier = 1.0;
    r.multiplier = 1.0;

    let d = r.domain.width() / 500.0;
    let predicate = JoinPredicate::WithinDistance(d);
    let cluster = Cluster::new(ClusterConfig::workstation());
    let mut expected = direct_join(&GeometryEngine::jts(), predicate, &l.records, &r.records);
    expected.sort_unstable();
    assert!(!expected.is_empty(), "distance join must have hits");
    for sys in systems() {
        let out = sys
            .run(&cluster, &l, &r, predicate)
            .unwrap_or_else(|e| panic!("{} failed: {e}", sys.name()));
        assert_eq!(out.sorted_pairs(), expected, "{} disagrees", sys.name());
    }
}

#[test]
fn agreement_across_seeds() {
    for seed in [1, 99, 12345] {
        assert_all_agree(Workload::taxi1m_nycb(), JoinPredicate::Intersects, 1e-4, seed);
    }
}

#[test]
fn agreement_across_cluster_configs() {
    // The hardware configuration affects time and failure, never results.
    let (l, r) = prepare(Workload::edge01_linearwater01(), 2e-4, 5);
    let reference = SpatialSpark::default()
        .run(&Cluster::new(ClusterConfig::workstation()), &l, &r, JoinPredicate::Intersects)
        .unwrap()
        .sorted_pairs();
    for cfg in [ClusterConfig::ec2(10), ClusterConfig::ec2(6), ClusterConfig::ec2(2)] {
        let out = SpatialSpark::default()
            .run(&Cluster::new(cfg), &l, &r, JoinPredicate::Intersects)
            .unwrap()
            .sorted_pairs();
        assert_eq!(out, reference);
    }
}
