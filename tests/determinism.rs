//! Bit-stable reproduction: identical scale and seed must give identical
//! datasets, results, simulated times and failure cells across runs.

use sjc_cluster::{Cluster, ClusterConfig};
use sjc_core::experiment::{ExperimentGrid, Workload};
use sjc_core::framework::DistributedSpatialJoin;
use sjc_core::framework::JoinPredicate;
use sjc_core::spatialhadoop::SpatialHadoop;

#[test]
fn dataset_generation_is_bit_stable() {
    for id in sjc_data::DatasetId::all() {
        let a = sjc_data::ScaledDataset::generate(id, 2e-4, 99);
        let b = sjc_data::ScaledDataset::generate(id, 2e-4, 99);
        assert_eq!(a.geoms, b.geoms, "{id:?}");
    }
}

#[test]
fn system_runs_are_bit_stable() {
    let (l, r) = Workload::taxi1m_nycb().prepare(3e-4, 2718);
    let cluster = Cluster::new(ClusterConfig::ec2(10));
    let sys = SpatialHadoop::default();
    let a = sys.run(&cluster, &l, &r, JoinPredicate::Intersects).unwrap();
    let b = sys.run(&cluster, &l, &r, JoinPredicate::Intersects).unwrap();
    assert_eq!(a.trace.total_ns(), b.trace.total_ns(), "simulated time is deterministic");
    let a_stage_ns: Vec<u64> = a.trace.stages.iter().map(|s| s.sim_ns).collect();
    let b_stage_ns: Vec<u64> = b.trace.stages.iter().map(|s| s.sim_ns).collect();
    assert_eq!(a_stage_ns, b_stage_ns);
    assert_eq!(a.sorted_pairs(), b.sorted_pairs());
}

#[test]
fn experiment_grid_cells_are_stable() {
    let grid = ExperimentGrid { scale: 3e-4, seed: 1 };
    let w = Workload::taxi1m_nycb();
    let (l, r) = w.prepare(grid.scale, grid.seed);
    let cfg = ClusterConfig::workstation();
    let run = || grid.run_cell(sjc_core::experiment::SystemKind::SpatialSpark, &cfg, &w, &l, &r);
    let a = run();
    let b = run();
    match (&a.outcome, &b.outcome) {
        (Ok(x), Ok(y)) => {
            assert_eq!(x.total_s, y.total_s);
            assert_eq!(x.pairs, y.pairs);
        }
        (Err(x), Err(y)) => assert_eq!(x, y),
        other => panic!("outcome flip-flopped: {other:?}"),
    }
}

#[test]
fn results_are_identical_across_thread_budgets() {
    // The whole point of sjc-par: the host thread budget may change wall
    // time, never results. Run all three systems serially and at 8 threads
    // and demand bit-identical traces and pair sets.
    let run_all = |threads: usize| {
        sjc_par::set_global_threads(threads);
        let (l, r) = Workload::taxi1m_nycb().prepare(3e-4, 31337);
        let cluster = Cluster::new(ClusterConfig::workstation());
        let out: Vec<_> = sjc_core::experiment::SystemKind::all()
            .iter()
            .map(|sys| {
                let o = sys
                    .instance()
                    .run(&cluster, &l, &r, JoinPredicate::Intersects)
                    .expect("workstation config completes for all systems");
                let stage_ns: Vec<u64> = o.trace.stages.iter().map(|s| s.sim_ns).collect();
                (o.trace.total_ns(), stage_ns, o.sorted_pairs())
            })
            .collect();
        sjc_par::set_global_threads(0);
        out
    };
    let serial = run_all(1);
    let parallel = run_all(8);
    assert_eq!(
        serial, parallel,
        "simulated traces and pair sets must not depend on SJC_PAR_THREADS"
    );
}

#[test]
fn stripe_sweep_kernel_is_identical_at_1_and_8_threads() {
    // The default local-join kernel fans its stripes out through
    // `sjc_par::par_map_flat`; the order-preserving merge must make the
    // emitted pair sequence — not just the set — and the reported JoinStats
    // bit-identical at any thread budget.
    let mut rng = sjc_data::rng::StdRng::seed_from_u64(0xD17E);
    let mut entries = |n: usize| -> Vec<sjc_index::entry::IndexEntry> {
        (0..n)
            .map(|i| {
                let x = rng.gen::<f64>() * 500.0;
                let y = rng.gen::<f64>() * 500.0;
                sjc_index::entry::IndexEntry::new(
                    i as u64,
                    sjc_geom::Mbr::new(
                        x,
                        y,
                        x + rng.gen::<f64>() * 4.0,
                        y + rng.gen::<f64>() * 4.0,
                    ),
                )
            })
            .collect()
    };
    let left = entries(9_000);
    let right = entries(4_500);
    let run = |threads: usize| {
        sjc_par::set_global_threads(threads);
        let out = sjc_index::join::stripe_sweep(&left, &right);
        sjc_par::set_global_threads(0);
        out
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.pairs, parallel.pairs, "exact pair order, not just the set");
    assert_eq!(serial.stats, parallel.stats, "identical JoinStats");
}

#[test]
fn faulted_runs_are_bit_stable() {
    // Fault draws are stateless hashes of (seed, stage, task, attempt):
    // re-running the same plan must replay the exact same failure history.
    let (l, r) = Workload::taxi1m_nycb().prepare(3e-4, 2718);
    let cfg = ClusterConfig::ec2(10);
    let plan = sjc_cluster::FaultPlan::light(11, &cfg).crash_at(3, 40_000_000_000);
    let cluster = Cluster::with_faults(cfg, plan);
    let sys = SpatialHadoop::default();
    let a = sys.run(&cluster, &l, &r, JoinPredicate::Intersects).unwrap();
    let b = sys.run(&cluster, &l, &r, JoinPredicate::Intersects).unwrap();
    assert_eq!(a.trace.total_ns(), b.trace.total_ns());
    assert_eq!(a.trace.recovery, b.trace.recovery, "identical recovery ledgers");
    let a_stage: Vec<(u64, u64, u64)> =
        a.trace.stages.iter().map(|s| (s.sim_ns, s.attempts, s.wasted_ns)).collect();
    let b_stage: Vec<(u64, u64, u64)> =
        b.trace.stages.iter().map(|s| (s.sim_ns, s.attempts, s.wasted_ns)).collect();
    assert_eq!(a_stage, b_stage);
    assert_eq!(a.sorted_pairs(), b.sorted_pairs());
}

#[test]
fn faulted_e2e_is_identical_at_1_and_8_threads() {
    // The persistent-pool counterpart of `faulted_runs_are_bit_stable`:
    // fault injection, recovery re-scheduling and checkpoint replay must
    // not leak the host thread budget either. Run every system under a
    // light fault plan plus a mid-run node crash, serially and with seven
    // pool helpers, and demand identical traces, recovery ledgers, pair
    // sets and simulated time.
    let run_all = |threads: usize| {
        sjc_par::set_global_threads(threads);
        let (l, r) = Workload::taxi1m_nycb().prepare(3e-4, 2718);
        let cfg = ClusterConfig::ec2(10);
        let out: Vec<_> = sjc_core::experiment::SystemKind::all()
            .iter()
            .map(|sys| {
                let plan = sjc_cluster::FaultPlan::light(11, &cfg).crash_at(3, 40_000_000_000);
                let cluster = Cluster::with_faults(cfg.clone(), plan);
                match sys.instance().run(&cluster, &l, &r, JoinPredicate::Intersects) {
                    Ok(o) => {
                        let stage: Vec<(u64, u64, u64)> = o
                            .trace
                            .stages
                            .iter()
                            .map(|s| (s.sim_ns, s.attempts, s.wasted_ns))
                            .collect();
                        Ok((o.trace.total_ns(), stage, o.trace.recovery.clone(), o.sorted_pairs()))
                    }
                    Err(e) => Err(format!("{e:?}")),
                }
            })
            .collect();
        sjc_par::set_global_threads(0);
        out
    };
    let serial = run_all(1);
    let parallel = run_all(8);
    assert_eq!(
        serial, parallel,
        "faulted traces, recovery ledgers and pair sets must not depend on the thread budget"
    );
}

#[test]
fn different_seeds_give_different_data_same_shape() {
    let a = sjc_data::ScaledDataset::generate(sjc_data::DatasetId::Taxi, 2e-4, 1);
    let b = sjc_data::ScaledDataset::generate(sjc_data::DatasetId::Taxi, 2e-4, 2);
    assert_ne!(a.geoms, b.geoms, "seeds vary the draw");
    assert_eq!(a.len(), b.len(), "but not the scale");
    assert_eq!(a.domain, b.domain, "nor the domain");
}
