//! Bit-stable reproduction: identical scale and seed must give identical
//! datasets, results, simulated times and failure cells across runs.

use sjc_core::experiment::{ExperimentGrid, Workload};
use sjc_core::framework::JoinPredicate;
use sjc_core::spatialhadoop::SpatialHadoop;
use sjc_core::framework::DistributedSpatialJoin;
use sjc_cluster::{Cluster, ClusterConfig};

#[test]
fn dataset_generation_is_bit_stable() {
    for id in sjc_data::DatasetId::all() {
        let a = sjc_data::ScaledDataset::generate(id, 2e-4, 99);
        let b = sjc_data::ScaledDataset::generate(id, 2e-4, 99);
        assert_eq!(a.geoms, b.geoms, "{id:?}");
    }
}

#[test]
fn system_runs_are_bit_stable() {
    let (l, r) = Workload::taxi1m_nycb().prepare(3e-4, 2718);
    let cluster = Cluster::new(ClusterConfig::ec2(10));
    let sys = SpatialHadoop::default();
    let a = sys.run(&cluster, &l, &r, JoinPredicate::Intersects).unwrap();
    let b = sys.run(&cluster, &l, &r, JoinPredicate::Intersects).unwrap();
    assert_eq!(a.trace.total_ns(), b.trace.total_ns(), "simulated time is deterministic");
    let a_stage_ns: Vec<u64> = a.trace.stages.iter().map(|s| s.sim_ns).collect();
    let b_stage_ns: Vec<u64> = b.trace.stages.iter().map(|s| s.sim_ns).collect();
    assert_eq!(a_stage_ns, b_stage_ns);
    assert_eq!(a.sorted_pairs(), b.sorted_pairs());
}

#[test]
fn experiment_grid_cells_are_stable() {
    let grid = ExperimentGrid { scale: 3e-4, seed: 1 };
    let w = Workload::taxi1m_nycb();
    let (l, r) = w.prepare(grid.scale, grid.seed);
    let cfg = ClusterConfig::workstation();
    let run = || {
        grid.run_cell(sjc_core::experiment::SystemKind::SpatialSpark, &cfg, &w, &l, &r)
    };
    let a = run();
    let b = run();
    match (&a.outcome, &b.outcome) {
        (Ok(x), Ok(y)) => {
            assert_eq!(x.total_s, y.total_s);
            assert_eq!(x.pairs, y.pairs);
        }
        (Err(x), Err(y)) => assert_eq!(x, y),
        other => panic!("outcome flip-flopped: {other:?}"),
    }
}

#[test]
fn different_seeds_give_different_data_same_shape() {
    let a = sjc_data::ScaledDataset::generate(sjc_data::DatasetId::Taxi, 2e-4, 1);
    let b = sjc_data::ScaledDataset::generate(sjc_data::DatasetId::Taxi, 2e-4, 2);
    assert_ne!(a.geoms, b.geoms, "seeds vary the draw");
    assert_eq!(a.len(), b.len(), "but not the scale");
    assert_eq!(a.domain, b.domain, "nor the domain");
}
