//! Runtime invariant sanitizer coverage (`sanitize` feature).
//!
//! The workspace test suite enables `sanitize` on `sjc-geom`, `sjc-index`
//! and `sjc-cluster` (see the root `Cargo.toml` dev-dependencies), turning
//! the static lint's structural assumptions into executable `debug_assert!`s.
//! These tests prove both directions: corruption actually trips the checks,
//! and the seed data pipeline runs clean under them.

use sjc_cluster::scheduler::{lpt_makespan, replicated_makespan};
use sjc_cluster::SimHdfs;
use sjc_data::{DatasetId, ScaledDataset};
use sjc_geom::{Mbr, Point};
use sjc_index::{IndexEntry, RTree};

/// An inverted MBR built by bypassing the normalizing constructor — the
/// corruption an index must refuse to swallow.
fn inverted_mbr() -> Mbr {
    Mbr { min_x: 1.0, min_y: 1.0, max_x: 0.0, max_y: 0.0 }
}

// `debug_assert!` only exists in builds with debug-assertions (the tier-1
// `cargo test -q` dev profile); under `--release` the corruption tests
// would not panic, so they are compiled out there.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "sanitize: MBR with NaN bounds")]
fn nan_coordinate_trips_mbr_sanitizer() {
    let _ = Point::new(f64::NAN, 1.0).mbr();
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "inverted/empty MBR")]
fn inverted_entry_trips_rtree_insert_sanitizer() {
    let mut tree = RTree::new_dynamic();
    tree.insert(IndexEntry::new(0, inverted_mbr()));
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "inverted/empty MBR")]
fn inverted_entry_trips_rtree_bulk_load_sanitizer() {
    let _ = RTree::bulk_load_str(vec![
        IndexEntry::new(0, Mbr::new(0.0, 0.0, 1.0, 1.0)),
        IndexEntry::new(1, inverted_mbr()),
    ]);
}

/// Seed datasets build, index and query without tripping a single
/// assertion: the invariants hold on the real pipeline, not just on toys.
#[test]
fn seed_datasets_run_clean_under_sanitizer() {
    for id in [DatasetId::Taxi, DatasetId::Nycb, DatasetId::Edges] {
        let ds = ScaledDataset::generate(id, 2e-5, 42);
        assert!(!ds.geoms.is_empty(), "{id:?} generated no geometry");

        let entries: Vec<IndexEntry> =
            ds.geoms.iter().enumerate().map(|(i, g)| IndexEntry::new(i as u64, g.mbr())).collect();

        // Both construction modes walk every sanitize hook.
        let bulk = RTree::bulk_load_str(entries.clone());
        let mut dynamic = RTree::new_dynamic();
        for e in entries {
            dynamic.insert(e);
        }
        assert_eq!(bulk.len(), dynamic.len());

        let probe = ds.domain;
        assert_eq!(bulk.query(&probe).len(), ds.geoms.len());
        assert_eq!(dynamic.query(&probe).len(), ds.geoms.len());
    }
}

#[test]
fn scheduler_and_hdfs_run_clean_under_sanitizer() {
    let tasks: Vec<u64> = (1..200).map(|i| (i * 7919) % 1000 + 1).collect();
    let lpt = lpt_makespan(&tasks, 16);
    assert!(lpt > 0);
    // Monotone-in-multiplier extrapolation exercises the start-time check.
    let mut prev = 0;
    for step in 0..50 {
        let m = replicated_makespan(&tasks, 16, 1.0 + step as f64 * 0.5);
        assert!(m >= prev, "extrapolation must stay monotone");
        prev = m;
    }

    let mut hdfs = SimHdfs::new(8);
    // Multi-block, single-block and empty files all satisfy block accounting.
    for (name, bytes) in [("big", 200 << 20), ("small", 4 << 10), ("empty", 0u64)] {
        let f = hdfs.write_file(name, bytes, bytes / 100);
        assert_eq!(f.bytes, bytes);
    }
}
