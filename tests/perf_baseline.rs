//! Tier-1 smoke test against the checked-in perf snapshot.
//!
//! `BENCH_baseline.json` records, among wall-clock numbers that vary by
//! host, one number that must not vary at all: the summed simulated
//! nanoseconds of the `systems_e2e` suite. Re-deriving it here pins two
//! invariants at once — the cost model's output is bit-stable across
//! machines and commits, and the fault subsystem's zero-fault path really
//! is the identity (the grid runs through `Cluster::with_faults(…,
//! FaultPlan::none())` since the fault PR). If a PR changes this number on
//! purpose, regenerate the snapshot:
//! `cargo run --release -p sjc-bench --bin perfsnap`.

use std::path::Path;

/// Extracts `"sim_ns": <digits>` following the `"{suite}@1"` key.
fn baseline_sim_ns(snapshot: &str, suite: &str) -> Option<u64> {
    let at = snapshot.find(&format!("\"{suite}@1\""))?;
    let tail = &snapshot[at..];
    let v = tail.find("\"sim_ns\":")?;
    let digits: String = tail[v + "\"sim_ns\":".len()..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[test]
fn zero_fault_systems_e2e_matches_checked_in_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let snapshot = std::fs::read_to_string(root.join("BENCH_baseline.json"))
        .expect("BENCH_baseline.json is checked in at the repo root");
    let expected =
        baseline_sim_ns(&snapshot, "systems_e2e").expect("snapshot has a systems_e2e@1 sim_ns");

    // Same recipe as perfsnap's systems_e2e suite: the full Table-2 grid at
    // its snapshot scale/seed, summed over successful cells.
    let grid = sjc_core::experiment::ExperimentGrid { scale: 1e-4, seed: 20150701 };
    let measured: u64 = grid
        .table2()
        .iter()
        .filter_map(|c| c.outcome.as_ref().ok())
        .map(|s| s.trace.total_ns())
        .sum();
    assert_eq!(
        measured, expected,
        "simulated systems_e2e time drifted from BENCH_baseline.json — either the \
         zero-fault path is no longer the identity, or a deliberate cost-model change \
         needs a snapshot regeneration (cargo run --release -p sjc-bench --bin perfsnap)"
    );
}
