//! Tier-1 smoke test against the checked-in perf snapshot.
//!
//! `BENCH_baseline.json` records, among wall-clock numbers that vary by
//! host, numbers that must not vary at all: the simulated nanoseconds of
//! each suite, identical at every recorded thread budget. Re-deriving the
//! `systems_e2e` figure here pins two invariants at once — the cost model's
//! output is bit-stable across machines and commits, and the fault
//! subsystem's zero-fault path really is the identity (the grid runs
//! through `Cluster::with_faults(…, FaultPlan::none())` since the fault
//! PR). If a PR changes this number on purpose, regenerate the snapshot:
//! `cargo run --release -p sjc-bench --bin perfsnap`.
//!
//! The snapshot is read through `sjc_bench::baseline`, which rejects
//! duplicate object keys — the old text-scanning reader silently took the
//! first of two `local_join@1` rows a single-core host used to emit.

use std::path::Path;

use sjc_bench::baseline::Baseline;

fn checked_in_baseline() -> Baseline {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let snapshot = std::fs::read_to_string(root.join("BENCH_baseline.json"))
        .expect("BENCH_baseline.json is checked in at the repo root");
    Baseline::parse(&snapshot).expect("BENCH_baseline.json parses (no duplicate keys)")
}

#[test]
fn snapshot_records_the_fixed_thread_ladder() {
    let baseline = checked_in_baseline();
    for suite in ["local_join", "data_gen", "systems_e2e"] {
        for threads in [1, 4, 8] {
            assert!(
                baseline.row(suite, threads).is_some(),
                "BENCH_baseline.json lacks the `{suite}@{threads}` row — regenerate \
                 with `cargo run --release -p sjc-bench --bin perfsnap`"
            );
        }
    }
}

#[test]
fn sim_ns_is_thread_count_independent_in_the_snapshot() {
    let baseline = checked_in_baseline();
    for suite in ["local_join", "data_gen", "systems_e2e"] {
        let rows = baseline.suite(suite);
        let first = rows.first().expect("suite has rows");
        for row in &rows {
            assert_eq!(
                row.sim_ns, first.sim_ns,
                "`{suite}` sim_ns differs between @{} and @{} in BENCH_baseline.json — \
                 the snapshot was produced by a thread-dependent simulation",
                first.threads, row.threads
            );
        }
    }
}

#[test]
fn extra_threads_do_not_cost_wall_time_in_the_snapshot() {
    // Before the persistent pool, every suite scaled *negatively* (spawn
    // overhead on each parallel call); the regenerated snapshot must show
    // @8 at or below @1 on the hot suites. This pins the snapshot host's
    // recorded numbers, not this machine's — wall-clock is only comparable
    // within one perfsnap run.
    let baseline = checked_in_baseline();
    for suite in ["local_join", "systems_e2e"] {
        let serial = baseline.row(suite, 1).expect("@1 row").wall_ms;
        let wide = baseline.row(suite, 8).expect("@8 row").wall_ms;
        assert!(
            wide < serial,
            "`{suite}` got slower with threads in BENCH_baseline.json ({wide} ms @8 vs \
             {serial} ms @1) — the pool regressed; regenerate with \
             `cargo run --release -p sjc-bench --bin perfsnap`"
        );
    }
}

#[test]
fn every_snapshot_row_carries_its_phase_breakdown() {
    // The per-phase wall times are what make a scaling regression
    // diagnosable; a snapshot written by an older perfsnap would silently
    // drop them (the parser treats phase_ms as optional for old files).
    let baseline = checked_in_baseline();
    for row in &baseline.rows {
        assert!(
            !row.phase_ms.is_empty(),
            "`{}@{}` lacks its phase_ms breakdown — regenerate the snapshot",
            row.suite,
            row.threads
        );
        for (phase, ms) in &row.phase_ms {
            assert!(ms.is_finite() && *ms >= 0.0, "{}@{} phase `{phase}`", row.suite, row.threads);
        }
    }
}

#[test]
fn zero_fault_systems_e2e_matches_checked_in_baseline() {
    let baseline = checked_in_baseline();
    let expected = baseline.row("systems_e2e", 1).expect("snapshot has a systems_e2e@1 row").sim_ns;

    // Same recipe as perfsnap's systems_e2e suite: the full Table-2 grid at
    // its snapshot scale/seed, summed over successful cells.
    let grid = sjc_core::experiment::ExperimentGrid { scale: 1e-4, seed: 20150701 };
    let measured: u64 = grid
        .table2()
        .iter()
        .filter_map(|c| c.outcome.as_ref().ok())
        .map(|s| s.trace.total_ns())
        .sum();
    assert_eq!(
        measured, expected,
        "simulated systems_e2e time drifted from BENCH_baseline.json — either the \
         zero-fault path is no longer the identity, or a deliberate cost-model change \
         needs a snapshot regeneration (cargo run --release -p sjc-bench --bin perfsnap)"
    );
}
