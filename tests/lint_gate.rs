//! Tier-1 lint gate.
//!
//! Two halves, both of which must hold for the simulated results to be
//! trustworthy:
//!
//! 1. the workspace itself is clean under `sjc-lint` — every remaining
//!    panic/nondeterminism site is an audited, reasoned suppression;
//! 2. the checker actually works — each named rule fires on seeded bad code
//!    (otherwise a silently broken scanner would make gate 1 vacuous).

use std::path::Path;

use sjc_lint::{check_file, check_workspace, Rule};

/// The gate: `cargo test -q` fails if any workspace source regresses.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let violations = check_workspace(root).expect("workspace scan must succeed");
    assert!(
        violations.is_empty(),
        "sjc-lint found {} violation(s):\n{}",
        violations.len(),
        violations.iter().map(|v| format!("  {v}\n")).collect::<String>()
    );
}

fn rules_fired(rel_path: &str, src: &str) -> Vec<Rule> {
    let mut rules: Vec<Rule> = check_file(rel_path, src).into_iter().map(|v| v.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn no_nondeterminism_fires_on_seeded_bad_code() {
    for bad in [
        "use std::collections::HashMap;\n",
        "let t = std::time::Instant::now();\n",
        "let mut rng = rand::thread_rng();\n",
    ] {
        let fired = rules_fired("crates/cluster/src/fixture.rs", bad);
        assert!(fired.contains(&Rule::NoNondeterminism), "{bad:?} -> {fired:?}");
    }
    // Deterministic alternatives pass.
    assert!(rules_fired("crates/cluster/src/fixture.rs", "use std::collections::BTreeMap;\n")
        .is_empty());
}

#[test]
fn no_panic_in_lib_fires_on_seeded_bad_code() {
    for bad in [
        "let x = opt.unwrap();\n",
        "let x = res.expect(\"always\");\n",
        "panic!(\"boom\");\n",
        "unreachable!();\n",
        "let x = items[i];\n",
    ] {
        let fired = rules_fired("crates/geom/src/fixture.rs", bad);
        assert!(fired.contains(&Rule::NoPanicInLib), "{bad:?} -> {fired:?}");
    }
    // The same code in a test harness file is fine.
    assert!(rules_fired("crates/geom/tests/fixture.rs", "let x = opt.unwrap();\n").is_empty());
}

#[test]
fn float_hygiene_fires_on_seeded_bad_code() {
    let fired = rules_fired("crates/geom/src/fixture.rs", "if area == 0.0 { return; }\n");
    assert!(fired.contains(&Rule::FloatHygiene), "{fired:?}");
    // Integer comparisons and epsilon helpers pass.
    assert!(rules_fired("crates/geom/src/fixture.rs", "if n == 0 { return; }\n").is_empty());
    assert!(rules_fired("crates/geom/src/fixture.rs", "if approx_zero(area) { return; }\n")
        .is_empty());
}

#[test]
fn bench_isolation_fires_on_seeded_bad_code() {
    // Wall-clock reads outside crates/bench are flagged...
    let fired = rules_fired("crates/testkit/src/fixture.rs", "let t0 = Instant::now();\n");
    assert!(fired.contains(&Rule::BenchIsolation), "{fired:?}");
    // ...and the bench harness itself is exempt.
    assert!(rules_fired("crates/bench/src/fixture.rs", "let t0 = Instant::now();\n").is_empty());
}

#[test]
fn serial_hot_loop_fires_on_seeded_bad_code() {
    let bad = "fn drive(tasks: &[u8]) {\n    for t in tasks {\n        run(t);\n    }\n}\n";
    // A serial task loop in a designated hot-path file is flagged…
    let fired = rules_fired("crates/mapreduce/src/job.rs", bad);
    assert!(fired.contains(&Rule::SerialHotLoop), "{fired:?}");
    // …the same loop in a non-hot-path file is not…
    assert!(rules_fired("crates/mapreduce/src/streaming.rs", bad).is_empty());
    // …per-record inner loops and sjc_par call expressions never fire…
    for ok in [
        "for rec in &task.records {\n",
        "for out in sjc_par::par_map(&parts, run) {\n",
    ] {
        assert!(rules_fired("crates/mapreduce/src/job.rs", ok).is_empty(), "{ok:?}");
    }
    // …and a reasoned suppression documents an intentionally serial merge.
    let suppressed = "fn drive(tasks: &[u8]) {\n    // sjc-lint: allow(serial-hot-loop) — merge must run in task order\n    for t in tasks {\n        run(t);\n    }\n}\n";
    assert!(rules_fired("crates/mapreduce/src/job.rs", suppressed).is_empty());
}

#[test]
fn bounded_retry_fires_on_seeded_bad_code() {
    // A retry loop with no named bound in a recovery-engine crate is
    // flagged at its header…
    let bad = "fn f() {\n    let mut attempt = 0u32;\n    loop {\n        attempt += 1;\n        if try_once(attempt) {\n            break;\n        }\n    }\n}\n";
    let fired = rules_fired("crates/cluster/src/fixture.rs", bad);
    assert!(fired.contains(&Rule::BoundedRetry), "{fired:?}");
    // …naming the MAX_* constant inside the loop passes…
    let good = bad.replace("if try_once(attempt) {", "if attempt >= MAX_TASK_ATTEMPTS || try_once(attempt) {");
    assert!(rules_fired("crates/cluster/src/fixture.rs", &good).is_empty());
    // …aggregation loops over recorded attempts never fire…
    let agg = "fn f(scheds: &[S], trace: &mut T) {\n    for s in scheds {\n        trace.attempts += s.attempts;\n    }\n}\n";
    assert!(rules_fired("crates/mapreduce/src/fixture.rs", agg).is_empty());
    // …and presentation code outside the engine crates is out of scope.
    assert!(rules_fired("crates/core/src/fixture.rs", bad).is_empty());
}

/// Compile-only bench gate: `cargo bench --no-run` must keep building so
/// the perf suites (and `perfsnap`'s inputs) cannot rot silently. Building,
/// not running: bench wall-clock belongs in `perfsnap`, not the test gate.
#[test]
fn bench_targets_compile() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = std::process::Command::new(env!("CARGO"))
        .args(["bench", "--no-run", "-p", "sjc-bench", "--offline", "-q"])
        .current_dir(root)
        .output()
        .expect("cargo bench --no-run must spawn");
    assert!(
        out.status.success(),
        "bench targets failed to compile:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bad_suppression_fires_on_seeded_bad_code() {
    // A reasonless allow is itself a violation and does not suppress.
    let vs = check_file("crates/geom/src/fixture.rs", "let x = v[0]; // sjc-lint: allow(no-panic-in-lib)\n");
    assert!(vs.iter().any(|v| v.rule == Rule::BadSuppression), "{vs:?}");
    assert!(vs.iter().any(|v| v.rule == Rule::NoPanicInLib), "{vs:?}");
    // An unknown rule name is a violation.
    let vs = check_file(
        "crates/geom/src/fixture.rs",
        "let x = v[0]; // sjc-lint: allow(no-such-rule) — justified at length\n",
    );
    assert!(vs.iter().any(|v| v.rule == Rule::BadSuppression), "{vs:?}");
    // A well-formed reasoned allow suppresses cleanly.
    let vs = check_file(
        "crates/geom/src/fixture.rs",
        "let x = v[0]; // sjc-lint: allow(no-panic-in-lib) — v is non-empty by construction\n",
    );
    assert!(vs.is_empty(), "{vs:?}");
}
