//! Tier-1 lint gate.
//!
//! Three parts, all of which must hold for the simulated results to be
//! trustworthy:
//!
//! 1. the workspace itself is clean under **both** checker layers — the
//!    line rules and the cross-file `sjc-analyze` passes — so every
//!    remaining panic/nondeterminism/race/discard site is an audited,
//!    reasoned suppression;
//! 2. the checker actually works — each named rule fires on seeded bad code
//!    (otherwise a silently broken scanner would make gate 1 vacuous); the
//!    analyzer passes prove this against fixture trees in
//!    `crates/lint/tests/analyze_fixtures.rs`;
//! 3. the checked-in `LINT_BASELINE.json` ratchet holds: per-rule counts
//!    may only decrease, and the baseline documents every rule.

use std::path::Path;
use std::time::Duration;

use sjc_lint::{
    check_all, check_all_timed, check_file, check_workspace, json, sarif, Rule, Violation,
};

/// The gate: `cargo test -q` fails if any workspace source regresses under
/// the line rules **or** the `sjc-analyze` passes.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let violations = check_all(root).expect("workspace scan must succeed");
    assert!(
        violations.is_empty(),
        "sjc-lint found {} violation(s):\n{}",
        violations.len(),
        violations.iter().map(|v| format!("  {v}\n")).collect::<String>()
    );
    // check_all = line rules + passes; make sure the line-rule layer alone
    // also ran (a scan error above would have surfaced, but an empty file
    // set must stay impossible).
    assert!(check_workspace(root).is_ok());
}

/// The ratchet: the fresh scan's per-rule counts must not exceed the
/// checked-in baseline, and the baseline must document every rule (so a new
/// rule cannot land without extending the contract).
#[test]
fn baseline_ratchet_holds_and_documents_every_rule() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(root.join("LINT_BASELINE.json"))
        .expect("LINT_BASELINE.json must be checked in at the workspace root");
    let baseline = json::Counts::parse(&text).expect("baseline must parse");
    for rule in Rule::ALL {
        assert!(
            baseline.by_rule.contains_key(rule.name()),
            "LINT_BASELINE.json is missing rule {:?} — regenerate with --write-baseline",
            rule.name()
        );
    }
    assert!(baseline.by_rule.contains_key(Rule::BadSuppression.name()));

    let violations = check_all(root).expect("workspace scan must succeed");
    let counts = json::Counts::from_violations(&violations);
    counts.ratchet_against(&baseline).unwrap_or_else(|e| panic!("baseline ratchet failed:\n{e}"));
}

/// The ratchet compares per-(rule, file) cells, not just totals: a
/// violation that merely *moves* between files — totals flat — must still
/// be rejected, otherwise churn could smuggle regressions into files the
/// baseline records as clean.
#[test]
fn ratchet_rejects_a_per_file_increase_even_at_flat_totals() {
    let baseline = json::Counts::from_violations(&[Violation::new(
        Rule::HotAlloc,
        "crates/a/src/x.rs",
        3,
        "seeded".to_string(),
    )]);
    let fresh = json::Counts::from_violations(&[Violation::new(
        Rule::HotAlloc,
        "crates/b/src/y.rs",
        3,
        "seeded".to_string(),
    )]);
    assert_eq!(fresh.total, baseline.total, "the move keeps totals flat");
    let err = fresh.ratchet_against(&baseline).expect_err("per-file cell must be enforced");
    assert!(err.contains("crates/b/src/y.rs"), "error names the regressed file: {err}");
}

/// The analyzer's own perf gate: the full two-layer scan (the same one
/// `--timings` instruments) must stay comfortably interactive, or the
/// checker stops being something contributors run before every commit. The
/// budget is generous — an order of magnitude above today's wall time — so
/// it only trips on genuine blowups (an accidentally quadratic pass, a
/// fixpoint that stops converging), not on CI jitter.
#[test]
fn full_scan_fits_the_wall_budget_and_names_every_stage() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (violations, timings) = check_all_timed(root).expect("workspace scan must succeed");
    assert!(violations.is_empty(), "{violations:?}");
    // Every pipeline stage reports a timing, so a silently skipped pass
    // cannot hide behind a fast total.
    for stage in [
        "line-rules",
        "model+callgraph",
        "summaries",
        "entropy",
        "par-closure",
        "error-flow",
        "hot-alloc",
        "loop-invariant",
        "unit-flow",
        "panic-path",
        "interproc-unit-flow",
        "cache-purity",
        "scoped-spawn",
        "stale-suppression",
    ] {
        assert!(
            timings.iter().any(|t| t.name == stage),
            "stage {stage:?} missing from timings: {:?}",
            timings.iter().map(|t| t.name).collect::<Vec<_>>()
        );
    }
    let total: Duration = timings.iter().map(|t| t.wall).sum();
    assert!(total < Duration::from_secs(20), "scan took {total:?}, budget is 20s");
}

/// Every rule the checker enforces is documented in the README's rule
/// table — a rule cannot land without telling contributors what it checks.
#[test]
fn every_rule_is_documented_in_the_readme_table() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(root.join("README.md")).expect("README.md at the root");
    for rule in Rule::ALL {
        assert!(
            text.contains(&format!("| `{}` |", rule.name())),
            "README.md rule table is missing `{}`",
            rule.name()
        );
    }
    assert!(text.contains(&format!("| `{}` |", Rule::BadSuppression.name())));
}

/// `--format sarif` on the live workspace scan must produce a report the
/// crate's own SARIF 2.1.0 checker accepts — the same artifact CI uploads
/// to code scanning.
#[test]
fn sarif_report_from_the_live_scan_validates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let violations = check_all(root).expect("workspace scan must succeed");
    let report = sarif::report(&violations);
    sarif::validate(&report).unwrap_or_else(|e| panic!("live SARIF report invalid: {e}"));
}

/// `--format json` and the baseline file share one parser: a report emitted
/// from the live scan must round-trip through it with identical counts.
#[test]
fn json_report_round_trips_against_the_live_scan() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let violations = check_all(root).expect("workspace scan must succeed");
    let report = json::report(&violations);
    let parsed = json::Counts::parse(&report).expect("report must parse");
    assert_eq!(parsed, json::Counts::from_violations(&violations));
    // The workspace is clean today, so the report's counts must equal the
    // checked-in all-zero baseline exactly.
    let text = std::fs::read_to_string(root.join("LINT_BASELINE.json")).unwrap();
    assert_eq!(parsed, json::Counts::parse(&text).unwrap());
}

fn rules_fired(rel_path: &str, src: &str) -> Vec<Rule> {
    let mut rules: Vec<Rule> = check_file(rel_path, src).into_iter().map(|v| v.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn no_nondeterminism_fires_on_seeded_bad_code() {
    for bad in [
        "use std::collections::HashMap;\n",
        "let t = std::time::Instant::now();\n",
        "let mut rng = rand::thread_rng();\n",
    ] {
        let fired = rules_fired("crates/cluster/src/fixture.rs", bad);
        assert!(fired.contains(&Rule::NoNondeterminism), "{bad:?} -> {fired:?}");
    }
    // Deterministic alternatives pass.
    assert!(rules_fired("crates/cluster/src/fixture.rs", "use std::collections::BTreeMap;\n")
        .is_empty());
}

#[test]
fn no_panic_in_lib_fires_on_seeded_bad_code() {
    for bad in [
        "let x = opt.unwrap();\n",
        "let x = res.expect(\"always\");\n",
        "panic!(\"boom\");\n",
        "unreachable!();\n",
        "let x = items[i];\n",
    ] {
        let fired = rules_fired("crates/geom/src/fixture.rs", bad);
        assert!(fired.contains(&Rule::NoPanicInLib), "{bad:?} -> {fired:?}");
    }
    // The same code in a test harness file is fine.
    assert!(rules_fired("crates/geom/tests/fixture.rs", "let x = opt.unwrap();\n").is_empty());
}

#[test]
fn float_hygiene_fires_on_seeded_bad_code() {
    let fired = rules_fired("crates/geom/src/fixture.rs", "if area == 0.0 { return; }\n");
    assert!(fired.contains(&Rule::FloatHygiene), "{fired:?}");
    // Integer comparisons and epsilon helpers pass.
    assert!(rules_fired("crates/geom/src/fixture.rs", "if n == 0 { return; }\n").is_empty());
    assert!(
        rules_fired("crates/geom/src/fixture.rs", "if approx_zero(area) { return; }\n").is_empty()
    );
}

#[test]
fn bench_isolation_fires_on_seeded_bad_code() {
    // Wall-clock reads outside crates/bench are flagged...
    let fired = rules_fired("crates/testkit/src/fixture.rs", "let t0 = Instant::now();\n");
    assert!(fired.contains(&Rule::BenchIsolation), "{fired:?}");
    // ...and the bench harness itself is exempt.
    assert!(rules_fired("crates/bench/src/fixture.rs", "let t0 = Instant::now();\n").is_empty());
}

#[test]
fn serial_hot_loop_fires_on_seeded_bad_code() {
    let bad = "fn drive(tasks: &[u8]) {\n    for t in tasks {\n        run(t);\n    }\n}\n";
    // A serial task loop in a designated hot-path file is flagged…
    let fired = rules_fired("crates/mapreduce/src/job.rs", bad);
    assert!(fired.contains(&Rule::SerialHotLoop), "{fired:?}");
    // …the same loop in a non-hot-path file is not…
    assert!(rules_fired("crates/mapreduce/src/streaming.rs", bad).is_empty());
    // …per-record inner loops and sjc_par call expressions never fire…
    for ok in ["for rec in &task.records {\n", "for out in sjc_par::par_map(&parts, run) {\n"] {
        assert!(rules_fired("crates/mapreduce/src/job.rs", ok).is_empty(), "{ok:?}");
    }
    // …and a reasoned suppression documents an intentionally serial merge.
    let suppressed = "fn drive(tasks: &[u8]) {\n    // sjc-lint: allow(serial-hot-loop) — merge must run in task order\n    for t in tasks {\n        run(t);\n    }\n}\n";
    assert!(rules_fired("crates/mapreduce/src/job.rs", suppressed).is_empty());
}

#[test]
fn bounded_retry_fires_on_seeded_bad_code() {
    // A retry loop with no named bound in a recovery-engine crate is
    // flagged at its header…
    let bad = "fn f() {\n    let mut attempt = 0u32;\n    loop {\n        attempt += 1;\n        if try_once(attempt) {\n            break;\n        }\n    }\n}\n";
    let fired = rules_fired("crates/cluster/src/fixture.rs", bad);
    assert!(fired.contains(&Rule::BoundedRetry), "{fired:?}");
    // …naming the MAX_* constant inside the loop passes…
    let good = bad.replace(
        "if try_once(attempt) {",
        "if attempt >= MAX_TASK_ATTEMPTS || try_once(attempt) {",
    );
    assert!(rules_fired("crates/cluster/src/fixture.rs", &good).is_empty());
    // …aggregation loops over recorded attempts never fire…
    let agg = "fn f(scheds: &[S], trace: &mut T) {\n    for s in scheds {\n        trace.attempts += s.attempts;\n    }\n}\n";
    assert!(rules_fired("crates/mapreduce/src/fixture.rs", agg).is_empty());
    // …and presentation code outside the engine crates is out of scope.
    assert!(rules_fired("crates/core/src/fixture.rs", bad).is_empty());
}

/// Compile-only bench gate: `cargo bench --no-run` must keep building so
/// the perf suites (and `perfsnap`'s inputs) cannot rot silently. Building,
/// not running: bench wall-clock belongs in `perfsnap`, not the test gate.
#[test]
fn bench_targets_compile() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = std::process::Command::new(env!("CARGO"))
        .args(["bench", "--no-run", "-p", "sjc-bench", "--offline", "-q"])
        .current_dir(root)
        .output()
        .expect("cargo bench --no-run must spawn");
    assert!(
        out.status.success(),
        "bench targets failed to compile:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bad_suppression_fires_on_seeded_bad_code() {
    // A reasonless allow is itself a violation and does not suppress.
    let vs = check_file(
        "crates/geom/src/fixture.rs",
        "let x = v[0]; // sjc-lint: allow(no-panic-in-lib)\n",
    );
    assert!(vs.iter().any(|v| v.rule == Rule::BadSuppression), "{vs:?}");
    assert!(vs.iter().any(|v| v.rule == Rule::NoPanicInLib), "{vs:?}");
    // An unknown rule name is a violation.
    let vs = check_file(
        "crates/geom/src/fixture.rs",
        "let x = v[0]; // sjc-lint: allow(no-such-rule) — justified at length\n",
    );
    assert!(vs.iter().any(|v| v.rule == Rule::BadSuppression), "{vs:?}");
    // A well-formed reasoned allow suppresses cleanly.
    let vs = check_file(
        "crates/geom/src/fixture.rs",
        "let x = v[0]; // sjc-lint: allow(no-panic-in-lib) — v is non-empty by construction\n",
    );
    assert!(vs.is_empty(), "{vs:?}");
}
