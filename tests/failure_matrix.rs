//! The paper's failure pattern — every "-" cell of Tables 2 and 3 — must
//! emerge from the simulated *mechanisms* (streaming pipe capacity, Spark
//! executor memory), never from hard-coding. These tests run the full
//! experiment grid at the calibration scale and assert the pattern
//! cell-by-cell, for several seeds.

use sjc_cluster::{Cluster, ClusterConfig};
use sjc_core::experiment::Workload;
use sjc_core::framework::{DistributedSpatialJoin, JoinPredicate};
use sjc_core::hadoopgis::HadoopGis;
use sjc_core::spatialhadoop::SpatialHadoop;
use sjc_core::spatialspark::SpatialSpark;

const SCALE: f64 = 1e-3;

fn run(
    sys: &dyn DistributedSpatialJoin,
    cfg: ClusterConfig,
    w: &Workload,
    seed: u64,
) -> Result<(), String> {
    let (l, r) = w.prepare(SCALE, seed);
    sys.run(&Cluster::new(cfg), &l, &r, JoinPredicate::Intersects)
        .map(|_| ())
        .map_err(|e| e.kind().to_string())
}

#[test]
fn hadoopgis_fails_all_full_dataset_cells_with_broken_pipe() {
    // Table 2, HadoopGIS rows: "-" under every configuration.
    let sys = HadoopGis::default();
    for w in [Workload::taxi_nycb(), Workload::edge_linearwater()] {
        for cfg in ClusterConfig::paper_configs() {
            let name = cfg.name.clone();
            let err = run(&sys, cfg, &w, 20150701)
                .expect_err(&format!("HadoopGIS must fail {} on {}", w.name, name));
            assert_eq!(err, "broken pipe", "{} on {name}", w.name);
        }
    }
}

#[test]
fn hadoopgis_sampled_pattern_ws_passes_ec2_fails() {
    // Table 3, HadoopGIS rows: succeeds on the workstation, broken pipe on
    // EC2-10 — across seeds, because the mechanism (payload vs node memory)
    // is robust, not tuned to one dataset draw.
    let sys = HadoopGis::default();
    for seed in [7, 20150701] {
        for w in [Workload::taxi1m_nycb(), Workload::edge01_linearwater01()] {
            assert!(
                run(&sys, ClusterConfig::workstation(), &w, seed).is_ok(),
                "{} seed {seed} must pass on WS",
                w.name
            );
            let err = run(&sys, ClusterConfig::ec2(10), &w, seed)
                .expect_err(&format!("{} seed {seed} must fail on EC2-10", w.name));
            assert_eq!(err, "broken pipe");
        }
    }
}

#[test]
fn spatialspark_oom_exactly_below_ec2_10() {
    // Table 2, SpatialSpark rows: WS (128 GB) and EC2-10 (150 GB aggregate)
    // "were sufficient"; EC2-8 and EC2-6 die of OOM — for both experiments.
    let sys = SpatialSpark::default();
    for seed in [7, 20150701] {
        for w in [Workload::taxi_nycb(), Workload::edge_linearwater()] {
            for (cfg, want_ok) in [
                (ClusterConfig::workstation(), true),
                (ClusterConfig::ec2(10), true),
                (ClusterConfig::ec2(8), false),
                (ClusterConfig::ec2(6), false),
            ] {
                let name = cfg.name.clone();
                let res = run(&sys, cfg, &w, seed);
                if want_ok {
                    assert!(res.is_ok(), "{} on {name} seed {seed}: {res:?}", w.name);
                } else {
                    assert_eq!(
                        res.expect_err(&format!("{} on {name} seed {seed} must OOM", w.name)),
                        "out of memory"
                    );
                }
            }
        }
    }
}

#[test]
fn spatialspark_sampled_datasets_fit_everywhere() {
    // Table 3: the sampled workloads are an order of magnitude smaller and
    // run fine even on EC2-6.
    let sys = SpatialSpark::default();
    for w in [Workload::taxi1m_nycb(), Workload::edge01_linearwater01()] {
        for cfg in ClusterConfig::paper_configs() {
            let name = cfg.name.clone();
            assert!(run(&sys, cfg, &w, 20150701).is_ok(), "{} on {name}", w.name);
        }
    }
}

#[test]
fn spatialhadoop_never_fails() {
    // "SpatialHadoop generally wins on robustness": every cell of both
    // tables succeeds.
    let sys = SpatialHadoop::default();
    for w in [
        Workload::taxi_nycb(),
        Workload::edge_linearwater(),
        Workload::taxi1m_nycb(),
        Workload::edge01_linearwater01(),
    ] {
        for cfg in ClusterConfig::paper_configs() {
            let name = cfg.name.clone();
            assert!(run(&sys, cfg, &w, 20150701).is_ok(), "{} on {name}", w.name);
        }
    }
}

#[test]
fn failures_are_mechanistic_not_configured() {
    // Give every node a little more memory than EC2-8's 15 GB and the same
    // SpatialSpark workload fits; shrink it and even EC2-10 dies. The
    // boundary moves with the *resource*, proving no cell is hard-coded.
    let (l, r) = Workload::taxi_nycb().prepare(SCALE, 20150701);
    let sys = SpatialSpark::default();

    let mut bigger8 = ClusterConfig::ec2(8);
    bigger8.node.memory_bytes = (bigger8.node.memory_bytes as f64 * 1.6) as u64;
    assert!(
        sys.run(&Cluster::new(bigger8), &l, &r, JoinPredicate::Intersects).is_ok(),
        "60% more memory per node rescues EC2-8"
    );

    let mut smaller10 = ClusterConfig::ec2(10);
    smaller10.node.memory_bytes = (smaller10.node.memory_bytes as f64 * 0.6) as u64;
    assert!(
        sys.run(&Cluster::new(smaller10), &l, &r, JoinPredicate::Intersects).is_err(),
        "40% less memory per node sinks EC2-10"
    );
}
