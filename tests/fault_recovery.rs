//! Fault-injection contract tests.
//!
//! Three invariants the fault subsystem must hold:
//!
//! 1. `FaultPlan::none()` is the *identity*: a cluster built with it is
//!    bit-identical to a plain `Cluster::new` — every stage number, byte
//!    counter and result pair, for all three systems.
//! 2. Faulted runs are deterministic: the same plan gives the same trace,
//!    recovery ledger and results regardless of the host thread budget.
//! 3. A mid-run node crash is survivable: the run completes, the recovery
//!    work is visible in the trace, and the join results are identical to
//!    the fault-free run.

use std::collections::BTreeMap;

use sjc_cluster::scheduler::faulty_makespan;
use sjc_cluster::{Cluster, ClusterConfig, FaultPlan, RecoveryKind, RunTrace, SimNs};
use sjc_core::experiment::{SystemKind, Workload};
use sjc_core::framework::{JoinInput, JoinPredicate};
use sjc_testkit::cases;

/// Every simulated number a stage reports, as a comparable row.
type StageRow = (String, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64);

fn stage_rows(t: &RunTrace) -> Vec<StageRow> {
    t.stages
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                s.sim_ns,
                s.hdfs_bytes_read,
                s.hdfs_bytes_written,
                s.shuffle_bytes,
                s.pipe_bytes,
                s.tasks,
                s.attempts,
                s.speculative,
                s.wasted_ns,
                s.bytes_reread,
            )
        })
        .collect()
}

/// The shared test workload: the one-month taxi slice at generation scale,
/// multiplier forced to 1 so HadoopGIS survives (its full-scale pipe break
/// is Table 2's story, not a fault-injection outcome).
fn workload() -> (JoinInput, JoinInput) {
    let (mut l, mut r) = Workload::taxi1m_nycb().prepare(1e-4, 42);
    l.multiplier = 1.0;
    r.multiplier = 1.0;
    (l, r)
}

#[test]
fn zero_fault_plan_is_bit_identical_to_a_plain_cluster() {
    let (l, r) = workload();
    let config = ClusterConfig::ec2(8);
    for sys in SystemKind::all() {
        let plain = sys
            .instance()
            .run(&Cluster::new(config.clone()), &l, &r, JoinPredicate::Intersects)
            .expect("fault-free run succeeds");
        let with_none = sys
            .instance()
            .run(
                &Cluster::with_faults(config.clone(), FaultPlan::none()),
                &l,
                &r,
                JoinPredicate::Intersects,
            )
            .expect("FaultPlan::none() run succeeds");
        assert_eq!(
            stage_rows(&plain.trace),
            stage_rows(&with_none.trace),
            "{}: FaultPlan::none() must not perturb a single stage number",
            sys.paper_name()
        );
        assert_eq!(plain.trace.total_ns(), with_none.trace.total_ns());
        assert!(plain.trace.recovery.is_empty() && with_none.trace.recovery.is_empty());
        assert_eq!(plain.sorted_pairs(), with_none.sorted_pairs());
    }
}

#[test]
fn faulted_runs_are_identical_across_thread_budgets() {
    let config = ClusterConfig::ec2(8);
    // A fixed mid-run crash plus heavy disk errors and stragglers: plenty
    // of recovery machinery exercised whichever system is running.
    let plan = FaultPlan::heavy(7, &config).crash_at(2, 30_000_000_000);
    let run_all = |threads: usize| {
        sjc_par::set_global_threads(threads);
        let (l, r) = workload();
        let cluster = Cluster::with_faults(config.clone(), plan.clone());
        let out: Vec<_> = SystemKind::all()
            .iter()
            .map(|sys| {
                let o = sys
                    .instance()
                    .run(&cluster, &l, &r, JoinPredicate::Intersects)
                    .expect("heavy plan at multiplier 1 completes for all systems");
                (
                    o.trace.total_ns(),
                    stage_rows(&o.trace),
                    o.trace.recovery.clone(),
                    o.sorted_pairs(),
                )
            })
            .collect();
        sjc_par::set_global_threads(0);
        out
    };
    let serial = run_all(1);
    let parallel = run_all(8);
    assert_eq!(
        serial, parallel,
        "fault draws are stateless hashes — traces, ledgers and results must not depend on SJC_PAR_THREADS"
    );
}

#[test]
fn recovery_never_changes_results_proptest() {
    // Property: for ANY fault plan, a run that completes produces exactly
    // the fault-free pair set — recovery may cost time, never correctness.
    let (l, r) = workload();
    let config = ClusterConfig::ec2(8);
    // (system, fault-free total ns, fault-free sorted pair set)
    type Reference = (SystemKind, u64, Vec<(u64, u64)>);
    let reference: Vec<Reference> = SystemKind::all()
        .iter()
        .map(|sys| {
            let out = sys
                .instance()
                .run(&Cluster::new(config.clone()), &l, &r, JoinPredicate::Intersects)
                .expect("fault-free baseline succeeds");
            (*sys, out.trace.total_ns(), out.sorted_pairs())
        })
        .collect();
    cases(0xFA01_7BAD, 18, |rng| {
        let (sys, base_ns, expect) = &reference[rng.usize_in(0..reference.len())];
        let mut plan = FaultPlan::seeded(rng.next_u64(), &config)
            .with_disk_errors(rng.f64_in(0.0..0.08))
            .with_stragglers(rng.f64_in(0.0..0.2), rng.f64_in(1.0..3.5));
        if rng.bool_with(0.6) {
            plan = plan.crash_at(rng.u32_in(0..8), rng.u64_in(0..*base_ns * 6 / 5));
        }
        let cluster = Cluster::with_faults(config.clone(), plan.clone());
        match sys.instance().run(&cluster, &l, &r, JoinPredicate::Intersects) {
            Ok(out) => {
                if !plan.is_none() {
                    assert!(
                        out.trace.total_ns() >= *base_ns,
                        "{}: faults never speed a run up",
                        sys.paper_name()
                    );
                }
                assert_eq!(
                    &out.sorted_pairs(),
                    expect,
                    "{}: recovery changed the join result under {plan:?}",
                    sys.paper_name()
                );
            }
            // Exhausted retries or a fatally shrunk cluster are legitimate
            // outcomes of a hostile random plan — the property constrains
            // only the runs that finish.
            Err(e) => {
                let k = e.kind();
                assert!(
                    ["task attempts exhausted", "node lost", "block lost"].contains(&k),
                    "{}: unexpected failure kind {k:?} under {plan:?}",
                    sys.paper_name()
                );
            }
        }
    });
}

#[test]
fn retry_backoff_shifts_attempt_histograms_and_costs_time() {
    // The bounded exponential backoff delays every disk-error retry by a
    // jittered [cap/2, cap] interval. Around a node crash that delay is not
    // just slower — it reshuffles which attempts launch on the doomed node
    // (a retry pushed past the crash is stashed off the dying slot instead
    // of being KILLED on it), so the histogram of attempt outcomes shifts,
    // not only the makespan. The per-attempt-number retry counts, by
    // contrast, are pure `(stage, task, attempt)` hash draws and must stay
    // bit-identical whatever the backoff does to the timeline.
    let config = ClusterConfig::ec2(4);
    let with = FaultPlan::seeded(7, &config).with_disk_errors(0.3).crash_at(1, 3_000_000_000);
    let without = with.clone().with_retry_backoff(0);
    assert_eq!(with.retry_backoff_base_ns, sjc_cluster::RETRY_BACKOFF_BASE_NS);
    let tasks: Vec<SimNs> = (0..64).map(|i| 1_000_000_000 + 37_000_000 * (i % 11)).collect();

    // (makespan, attempt-outcome histogram, per-attempt-number retry counts)
    let run = |plan: &FaultPlan| {
        let s = faulty_makespan(&tasks, 2, 4, plan, "map", 0, false).expect("wave survives");
        let mut outcomes: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut retries_by_attempt: BTreeMap<u32, u64> = BTreeMap::new();
        outcomes.insert("launched", s.attempts);
        for e in &s.events {
            match e.kind {
                RecoveryKind::TaskRetry { attempt, .. } => {
                    *outcomes.entry("failed").or_default() += 1;
                    *retries_by_attempt.entry(attempt).or_default() += 1;
                }
                RecoveryKind::NodeCrash { tasks_killed, .. } => {
                    *outcomes.entry("killed").or_default() += tasks_killed;
                }
                _ => {}
            }
        }
        (s.makespan, outcomes, retries_by_attempt)
    };
    let (backed_ns, backed_outcomes, backed_retries) = run(&with);
    let (eager_ns, eager_outcomes, eager_retries) = run(&without);
    assert!(backed_outcomes["failed"] > 0, "the plan injects retries");
    assert!(backed_ns > eager_ns, "backoff gaps cost simulated time: {backed_ns} <= {eager_ns}");
    assert_ne!(
        backed_outcomes, eager_outcomes,
        "backoff around a crash must shift the attempt-outcome histogram"
    );
    assert_eq!(
        backed_retries, eager_retries,
        "disk-error draws are pure in (stage, task, attempt) — backoff must not change them"
    );
    // And the backed-off schedule is still a pure function of its inputs.
    assert_eq!(run(&with), run(&with));
}

#[test]
fn systems_survive_a_mid_run_crash_with_identical_results() {
    let (l, r) = workload();
    let config = ClusterConfig::ec2(8);
    for sys in SystemKind::all() {
        let clean = sys
            .instance()
            .run(&Cluster::new(config.clone()), &l, &r, JoinPredicate::Intersects)
            .expect("fault-free baseline succeeds");
        let base_ns = clean.trace.total_ns();
        // Crash node 2 at 40% of this system's own fault-free runtime so the
        // crash lands mid-execution for every system.
        let plan = FaultPlan::heavy(7, &config).crash_at(2, base_ns * 2 / 5);
        let faulted = sys
            .instance()
            .run(&Cluster::with_faults(config.clone(), plan), &l, &r, JoinPredicate::Intersects)
            .unwrap_or_else(|e| {
                panic!("{} must survive one crash on 8 nodes: {e}", sys.paper_name())
            });
        let name = sys.paper_name();
        assert!(
            !faulted.trace.recovery.is_empty(),
            "{name}: recovery actions must be visible in the trace"
        );
        let event_waste: u64 = faulted.trace.recovery.iter().map(|e| e.wasted_ns).sum();
        assert!(event_waste > 0, "{name}: recovery must charge wasted work");
        assert!(
            faulted.trace.total_attempts() > 0,
            "{name}: faulted schedulers meter task attempts"
        );
        assert!(
            faulted.trace.total_ns() > base_ns,
            "{name}: recovery costs simulated time ({} vs {base_ns})",
            faulted.trace.total_ns()
        );
        assert_eq!(
            clean.sorted_pairs(),
            faulted.sorted_pairs(),
            "{name}: fault recovery must not change the join result"
        );
    }
}
