//! Fault-injection contract tests.
//!
//! Three invariants the fault subsystem must hold:
//!
//! 1. `FaultPlan::none()` is the *identity*: a cluster built with it is
//!    bit-identical to a plain `Cluster::new` — every stage number, byte
//!    counter and result pair, for all three systems.
//! 2. Faulted runs are deterministic: the same plan gives the same trace,
//!    recovery ledger and results regardless of the host thread budget.
//! 3. A mid-run node crash is survivable: the run completes, the recovery
//!    work is visible in the trace, and the join results are identical to
//!    the fault-free run.

use std::collections::BTreeMap;

use sjc_cluster::scheduler::faulty_makespan;
use sjc_cluster::{
    Cluster, ClusterConfig, FaultPlan, RecoveryKind, RunTrace, SimNs, DEFAULT_PROVISION_DELAY_NS,
};
use sjc_core::experiment::{SystemKind, Workload};
use sjc_core::framework::{JoinInput, JoinPredicate};
use sjc_testkit::cases;

/// Every simulated number a stage reports, as a comparable row.
type StageRow = (String, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64);

fn stage_rows(t: &RunTrace) -> Vec<StageRow> {
    t.stages
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                s.sim_ns,
                s.hdfs_bytes_read,
                s.hdfs_bytes_written,
                s.shuffle_bytes,
                s.pipe_bytes,
                s.tasks,
                s.attempts,
                s.speculative,
                s.wasted_ns,
                s.bytes_reread,
            )
        })
        .collect()
}

/// The shared test workload: the one-month taxi slice at generation scale,
/// multiplier forced to 1 so HadoopGIS survives (its full-scale pipe break
/// is Table 2's story, not a fault-injection outcome).
fn workload() -> (JoinInput, JoinInput) {
    let (mut l, mut r) = Workload::taxi1m_nycb().prepare(1e-4, 42);
    l.multiplier = 1.0;
    r.multiplier = 1.0;
    (l, r)
}

#[test]
fn zero_fault_plan_is_bit_identical_to_a_plain_cluster() {
    let (l, r) = workload();
    let config = ClusterConfig::ec2(8);
    for sys in SystemKind::all() {
        let plain = sys
            .instance()
            .run(&Cluster::new(config.clone()), &l, &r, JoinPredicate::Intersects)
            .expect("fault-free run succeeds");
        let with_none = sys
            .instance()
            .run(
                &Cluster::with_faults(config.clone(), FaultPlan::none()),
                &l,
                &r,
                JoinPredicate::Intersects,
            )
            .expect("FaultPlan::none() run succeeds");
        assert_eq!(
            stage_rows(&plain.trace),
            stage_rows(&with_none.trace),
            "{}: FaultPlan::none() must not perturb a single stage number",
            sys.paper_name()
        );
        assert_eq!(plain.trace.total_ns(), with_none.trace.total_ns());
        assert!(plain.trace.recovery.is_empty() && with_none.trace.recovery.is_empty());
        assert_eq!(plain.sorted_pairs(), with_none.sorted_pairs());
    }
}

#[test]
fn faulted_runs_are_identical_across_thread_budgets() {
    let config = ClusterConfig::ec2(8);
    // A fixed mid-run crash plus heavy disk errors and stragglers: plenty
    // of recovery machinery exercised whichever system is running.
    let plan = FaultPlan::heavy(7, &config).crash_at(2, 30_000_000_000);
    let run_all = |threads: usize| {
        sjc_par::set_global_threads(threads);
        let (l, r) = workload();
        let cluster = Cluster::with_faults(config.clone(), plan.clone());
        let out: Vec<_> = SystemKind::all()
            .iter()
            .map(|sys| {
                let o = sys
                    .instance()
                    .run(&cluster, &l, &r, JoinPredicate::Intersects)
                    .expect("heavy plan at multiplier 1 completes for all systems");
                (
                    o.trace.total_ns(),
                    stage_rows(&o.trace),
                    o.trace.recovery.clone(),
                    o.sorted_pairs(),
                )
            })
            .collect();
        sjc_par::set_global_threads(0);
        out
    };
    let serial = run_all(1);
    let parallel = run_all(8);
    assert_eq!(
        serial, parallel,
        "fault draws are stateless hashes — traces, ledgers and results must not depend on SJC_PAR_THREADS"
    );
}

#[test]
fn recovery_never_changes_results_proptest() {
    // Property: for ANY fault plan, a run that completes produces exactly
    // the fault-free pair set — recovery may cost time, never correctness.
    let (l, r) = workload();
    let config = ClusterConfig::ec2(8);
    // (system, fault-free total ns, fault-free sorted pair set)
    type Reference = (SystemKind, u64, Vec<(u64, u64)>);
    let reference: Vec<Reference> = SystemKind::all()
        .iter()
        .map(|sys| {
            let out = sys
                .instance()
                .run(&Cluster::new(config.clone()), &l, &r, JoinPredicate::Intersects)
                .expect("fault-free baseline succeeds");
            (*sys, out.trace.total_ns(), out.sorted_pairs())
        })
        .collect();
    cases(0xFA01_7BAD, 18, |rng| {
        let (sys, base_ns, expect) = &reference[rng.usize_in(0..reference.len())];
        let mut plan = FaultPlan::seeded(rng.next_u64(), &config)
            .with_disk_errors(rng.f64_in(0.0..0.08))
            .with_stragglers(rng.f64_in(0.0..0.2), rng.f64_in(1.0..3.5));
        if rng.bool_with(0.6) {
            plan = plan.crash_at(rng.u32_in(0..8), rng.u64_in(0..*base_ns * 6 / 5));
        }
        let cluster = Cluster::with_faults(config.clone(), plan.clone());
        match sys.instance().run(&cluster, &l, &r, JoinPredicate::Intersects) {
            Ok(out) => {
                if !plan.is_none() {
                    assert!(
                        out.trace.total_ns() >= *base_ns,
                        "{}: faults never speed a run up",
                        sys.paper_name()
                    );
                }
                assert_eq!(
                    &out.sorted_pairs(),
                    expect,
                    "{}: recovery changed the join result under {plan:?}",
                    sys.paper_name()
                );
            }
            // Exhausted retries or a fatally shrunk cluster are legitimate
            // outcomes of a hostile random plan — the property constrains
            // only the runs that finish.
            Err(e) => {
                let k = e.kind();
                assert!(
                    ["task attempts exhausted", "node lost", "block lost"].contains(&k),
                    "{}: unexpected failure kind {k:?} under {plan:?}",
                    sys.paper_name()
                );
            }
        }
    });
}

#[test]
fn retry_backoff_shifts_attempt_histograms_and_costs_time() {
    // The bounded exponential backoff delays every disk-error retry by a
    // jittered [cap/2, cap] interval. Around a node crash that delay is not
    // just slower — it reshuffles which attempts launch on the doomed node
    // (a retry pushed past the crash is stashed off the dying slot instead
    // of being KILLED on it), so the histogram of attempt outcomes shifts,
    // not only the makespan. The per-attempt-number retry counts, by
    // contrast, are pure `(stage, task, attempt)` hash draws and must stay
    // bit-identical whatever the backoff does to the timeline.
    let config = ClusterConfig::ec2(4);
    let with = FaultPlan::seeded(7, &config).with_disk_errors(0.3).crash_at(1, 3_000_000_000);
    let without = with.clone().with_retry_backoff(0);
    assert_eq!(with.retry_backoff_base_ns, sjc_cluster::RETRY_BACKOFF_BASE_NS);
    let tasks: Vec<SimNs> = (0..64).map(|i| 1_000_000_000 + 37_000_000 * (i % 11)).collect();

    // (makespan, attempt-outcome histogram, per-attempt-number retry counts)
    let run = |plan: &FaultPlan| {
        let s = faulty_makespan(&tasks, 2, 4, plan, "map", 0, false).expect("wave survives");
        let mut outcomes: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut retries_by_attempt: BTreeMap<u32, u64> = BTreeMap::new();
        outcomes.insert("launched", s.attempts);
        for e in &s.events {
            match e.kind {
                RecoveryKind::TaskRetry { attempt, .. } => {
                    *outcomes.entry("failed").or_default() += 1;
                    *retries_by_attempt.entry(attempt).or_default() += 1;
                }
                RecoveryKind::NodeCrash { tasks_killed, .. } => {
                    *outcomes.entry("killed").or_default() += tasks_killed;
                }
                _ => {}
            }
        }
        (s.makespan, outcomes, retries_by_attempt)
    };
    let (backed_ns, backed_outcomes, backed_retries) = run(&with);
    let (eager_ns, eager_outcomes, eager_retries) = run(&without);
    assert!(backed_outcomes["failed"] > 0, "the plan injects retries");
    assert!(backed_ns > eager_ns, "backoff gaps cost simulated time: {backed_ns} <= {eager_ns}");
    assert_ne!(
        backed_outcomes, eager_outcomes,
        "backoff around a crash must shift the attempt-outcome histogram"
    );
    assert_eq!(
        backed_retries, eager_retries,
        "disk-error draws are pure in (stage, task, attempt) — backoff must not change them"
    );
    // And the backed-off schedule is still a pure function of its inputs.
    assert_eq!(run(&with), run(&with));
}

#[test]
fn checkpoint_interval_infinity_degenerates_bit_identically() {
    // Interval 0 means "never checkpoint" — the plan must behave exactly
    // like today's lineage-only recovery, stage row for stage row, both
    // with and without faults.
    let (l, r) = workload();
    let config = ClusterConfig::ec2(8);
    for sys in SystemKind::all() {
        let base = sys
            .instance()
            .run(&Cluster::new(config.clone()), &l, &r, JoinPredicate::Intersects)
            .expect("fault-free baseline succeeds");
        let disabled_only = FaultPlan::seeded(7, &config).with_checkpoints(0, 3);
        assert!(disabled_only.is_none(), "a disabled checkpoint policy must keep the fast path");
        let heavy = FaultPlan::heavy(7, &config).crash_at(2, base.trace.total_ns() * 2 / 5);
        let lineage = sys
            .instance()
            .run(
                &Cluster::with_faults(config.clone(), heavy.clone()),
                &l,
                &r,
                JoinPredicate::Intersects,
            )
            .expect("heavy plan at multiplier 1 completes");
        let infinite = sys
            .instance()
            .run(
                &Cluster::with_faults(config.clone(), heavy.with_checkpoints(0, 3)),
                &l,
                &r,
                JoinPredicate::Intersects,
            )
            .expect("heavy plan at multiplier 1 completes");
        assert_eq!(
            stage_rows(&lineage.trace),
            stage_rows(&infinite.trace),
            "{}: interval-∞ checkpoints must not perturb a single stage number",
            sys.paper_name()
        );
        assert_eq!(lineage.trace.total_ns(), infinite.trace.total_ns());
        assert_eq!(lineage.trace.recovery, infinite.trace.recovery);
        assert_eq!(lineage.sorted_pairs(), infinite.sorted_pairs());
    }
}

#[test]
fn checkpointed_recovery_cost_never_exceeds_lineage_only_proptest() {
    // Property: for the Spark system, the *recovery* cost of a faulted run
    // (its total minus a fault-free run under the same write policy, so the
    // checkpoint-write premium cancels) never exceeds the lineage-only
    // recovery cost of the same seed and plan. Truncating the replay depth
    // and re-reading the durable copy can only cheapen recovery.
    let (l, r) = workload();
    let config = ClusterConfig::ec2(8);
    let sys = SystemKind::SpatialSpark;
    let run = |plan: FaultPlan| {
        sys.instance()
            .run(&Cluster::with_faults(config.clone(), plan), &l, &r, JoinPredicate::Intersects)
            .expect("plan completes at multiplier 1")
            .trace
            .total_ns()
    };
    let base = run(FaultPlan::none());
    // Checkpoint writes are seed-invariant (no fault draws fire), so the
    // fault-free-with-writes baseline depends only on the interval.
    let ckpt_base: Vec<u64> =
        (1..4).map(|iv| run(FaultPlan::seeded(0, &config).with_checkpoints(iv, 3))).collect();
    cases(0xC4E9_0217, 10, |rng| {
        let interval = rng.u32_in(1..4);
        let plan = FaultPlan::heavy(rng.next_u64(), &config)
            .crash_at(rng.u32_in(0..8), base * rng.u64_in(10..90) / 100);
        let lineage_recovery = run(plan.clone()) - base;
        let ckpt_total = run(plan.clone().with_checkpoints(interval, 3));
        let ckpt_recovery = ckpt_total.saturating_sub(ckpt_base[interval as usize - 1]);
        assert!(
            ckpt_recovery <= lineage_recovery,
            "checkpointed recovery ({ckpt_recovery} ns) must not exceed lineage-only \
             recovery ({lineage_recovery} ns) under {plan:?} interval {interval}"
        );
    });
}

#[test]
fn heavy_checkpointed_spark_strictly_improves_and_replacements_regain_capacity() {
    // The acceptance pin: under the heavy preset with a finite checkpoint
    // interval, the Spark system strictly beats lineage-only recovery, and
    // elastic replacement provisioning wins back the crashed node's slots.
    let (l, r) = workload();
    let config = ClusterConfig::ec2(8);
    let sys = SystemKind::SpatialSpark;
    let run = |plan: FaultPlan| {
        sys.instance()
            .run(&Cluster::with_faults(config.clone(), plan), &l, &r, JoinPredicate::Intersects)
            .expect("heavy plan at multiplier 1 completes")
    };
    let base = run(FaultPlan::none()).trace.total_ns();
    // Crash node 2 late enough that a completed stage's partitions are
    // resident on it: the resubmit then replays real lineage.
    let heavy = FaultPlan::heavy(7, &config).crash_at(2, base * 7 / 10);
    let lineage = run(heavy.clone());
    let ckpt = run(heavy.clone().with_checkpoints(2, 3));
    let resub_depth = |t: &RunTrace| {
        t.recovery
            .iter()
            .filter_map(|e| match e.kind {
                RecoveryKind::StageResubmit { lineage_depth, .. } => Some(lineage_depth),
                _ => None,
            })
            .max()
    };
    assert!(resub_depth(&lineage.trace).is_some(), "the heavy crash forces a stage resubmit");
    assert!(
        resub_depth(&ckpt.trace) <= resub_depth(&lineage.trace),
        "a durable checkpoint can only truncate the replay depth"
    );
    assert!(ckpt
        .trace
        .recovery
        .iter()
        .any(|e| matches!(e.kind, RecoveryKind::CheckpointWrite { .. })));
    assert!(
        ckpt.trace.total_ns() < lineage.trace.total_ns(),
        "finite checkpoint interval must strictly beat lineage-only under the heavy preset: \
         {} >= {}",
        ckpt.trace.total_ns(),
        lineage.trace.total_ns()
    );

    // Elastic re-scheduling: a replacement node provisioned within the run
    // regains the crashed node's slots and shrinks the makespan further.
    let elastic = run(heavy.with_checkpoints(2, 3).with_elastic_provisioning(4_000_000_000));
    assert!(
        elastic
            .trace
            .recovery
            .iter()
            .any(|e| matches!(e.kind, RecoveryKind::NodeReplaced { node: 2, .. })),
        "the replacement for the crashed node must be visible in the ledger"
    );
    assert!(
        elastic.trace.total_ns() < ckpt.trace.total_ns(),
        "regained slot capacity must shrink the run: {} >= {}",
        elastic.trace.total_ns(),
        ckpt.trace.total_ns()
    );
    assert_eq!(lineage.sorted_pairs(), elastic.sorted_pairs());

    // The Hadoop-family systems regain capacity at the default provisioning
    // delay (their runs are long enough for a 15-30 s spin-up to land).
    let sh = SystemKind::SpatialHadoop;
    let sh_run = |plan: FaultPlan| {
        sh.instance()
            .run(&Cluster::with_faults(config.clone(), plan), &l, &r, JoinPredicate::Intersects)
            .expect("heavy plan at multiplier 1 completes")
    };
    let sh_base = sh_run(FaultPlan::none()).trace.total_ns();
    let sh_heavy = FaultPlan::heavy(7, &config).crash_at(2, sh_base * 2 / 5);
    let dead = sh_run(sh_heavy.clone());
    let replaced = sh_run(sh_heavy.with_elastic_provisioning(DEFAULT_PROVISION_DELAY_NS));
    assert!(replaced
        .trace
        .recovery
        .iter()
        .any(|e| matches!(e.kind, RecoveryKind::NodeReplaced { node: 2, .. })));
    assert!(
        replaced.trace.total_ns() < dead.trace.total_ns(),
        "a mid-run replacement must shrink SpatialHadoop's makespan: {} >= {}",
        replaced.trace.total_ns(),
        dead.trace.total_ns()
    );
    assert_eq!(dead.sorted_pairs(), replaced.sorted_pairs());
}

#[test]
fn decommission_drains_gracefully_at_system_level() {
    // A graceful decommission re-balances work off the node without killing
    // attempts or losing data: no wasted work, identical results, and the
    // drain is visible in the ledger.
    let (l, r) = workload();
    let config = ClusterConfig::ec2(8);
    for sys in SystemKind::all() {
        let clean = sys
            .instance()
            .run(&Cluster::new(config.clone()), &l, &r, JoinPredicate::Intersects)
            .expect("fault-free baseline succeeds");
        let plan = FaultPlan::seeded(7, &config).decommission_at(3, clean.trace.total_ns() * 2 / 5);
        let drained = sys
            .instance()
            .run(&Cluster::with_faults(config.clone(), plan), &l, &r, JoinPredicate::Intersects)
            .expect("a decommission is never fatal");
        let name = sys.paper_name();
        assert!(
            drained
                .trace
                .recovery
                .iter()
                .any(|e| matches!(e.kind, RecoveryKind::Decommission { node: 3 })),
            "{name}: the drain must be visible in the ledger"
        );
        assert!(
            !drained.trace.recovery.iter().any(|e| matches!(
                e.kind,
                RecoveryKind::MapRerun { .. } | RecoveryKind::StageResubmit { .. }
            )),
            "{name}: a graceful drain loses no data and re-runs nothing"
        );
        assert!(
            drained.trace.total_ns() >= clean.trace.total_ns(),
            "{name}: losing capacity never speeds a run up"
        );
        assert_eq!(
            clean.sorted_pairs(),
            drained.sorted_pairs(),
            "{name}: a drain must not change the join result"
        );
    }
}

#[test]
fn systems_survive_a_mid_run_crash_with_identical_results() {
    let (l, r) = workload();
    let config = ClusterConfig::ec2(8);
    for sys in SystemKind::all() {
        let clean = sys
            .instance()
            .run(&Cluster::new(config.clone()), &l, &r, JoinPredicate::Intersects)
            .expect("fault-free baseline succeeds");
        let base_ns = clean.trace.total_ns();
        // Crash node 2 at 40% of this system's own fault-free runtime so the
        // crash lands mid-execution for every system.
        let plan = FaultPlan::heavy(7, &config).crash_at(2, base_ns * 2 / 5);
        let faulted = sys
            .instance()
            .run(&Cluster::with_faults(config.clone(), plan), &l, &r, JoinPredicate::Intersects)
            .unwrap_or_else(|e| {
                panic!("{} must survive one crash on 8 nodes: {e}", sys.paper_name())
            });
        let name = sys.paper_name();
        assert!(
            !faulted.trace.recovery.is_empty(),
            "{name}: recovery actions must be visible in the trace"
        );
        let event_waste: u64 = faulted.trace.recovery.iter().map(|e| e.wasted_ns).sum();
        assert!(event_waste > 0, "{name}: recovery must charge wasted work");
        assert!(
            faulted.trace.total_attempts() > 0,
            "{name}: faulted schedulers meter task attempts"
        );
        assert!(
            faulted.trace.total_ns() > base_ns,
            "{name}: recovery costs simulated time ({} vs {base_ns})",
            faulted.trace.total_ns()
        );
        assert_eq!(
            clean.sorted_pairs(),
            faulted.sorted_pairs(),
            "{name}: fault recovery must not change the join result"
        );
    }
}
