//! The paper's Fig.-1 architectural claims, verified quantitatively from
//! the systems' stage traces.

use sjc_cluster::metrics::Phase;
use sjc_cluster::{Cluster, ClusterConfig, StageKind};
use sjc_core::experiment::Workload;
use sjc_core::framework::{DistributedSpatialJoin, JoinInput, JoinPredicate};
use sjc_core::hadoopgis::HadoopGis;
use sjc_core::spatialhadoop::SpatialHadoop;
use sjc_core::spatialspark::SpatialSpark;

fn inputs() -> (JoinInput, JoinInput) {
    let (mut l, mut r) = Workload::taxi1m_nycb().prepare(3e-4, 3);
    l.multiplier = 1.0;
    r.multiplier = 1.0;
    (l, r)
}

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig::ec2(10))
}

#[test]
fn spatialspark_touches_hdfs_only_to_read_inputs() {
    // §II: "SpatialSpark touches HDFS only when input data are read from
    // HDFS to memory of computing nodes."
    let (l, r) = inputs();
    let out = SpatialSpark::default().run(&cluster(), &l, &r, JoinPredicate::Intersects).unwrap();
    let written: u64 = out.trace.stages.iter().map(|s| s.hdfs_bytes_written).sum();
    assert_eq!(written, 0);
    let read: u64 = out.trace.stages.iter().map(|s| s.hdfs_bytes_read).sum();
    assert_eq!(read, l.sim_bytes + r.sim_bytes, "each input read exactly once");
}

#[test]
fn hadoop_systems_interact_with_hdfs_much_more() {
    // §II: "SpatialHadoop and HadoopGIS have much more interactions
    // (including reading inputs, writing outputs and shuffling intermediate
    // results) with HDFS".
    let (l, r) = inputs();
    let c = cluster();
    let spark = SpatialSpark::default().run(&c, &l, &r, JoinPredicate::Intersects).unwrap();
    let shadoop = SpatialHadoop::default().run(&c, &l, &r, JoinPredicate::Intersects).unwrap();
    let hgis = HadoopGis::default().run(&c, &l, &r, JoinPredicate::Intersects).unwrap();
    assert!(shadoop.trace.hdfs_bytes() > 2 * spark.trace.hdfs_bytes());
    assert!(hgis.trace.hdfs_bytes() > 2 * spark.trace.hdfs_bytes());
    assert!(shadoop.trace.hdfs_touching_stages() > spark.trace.hdfs_touching_stages());
}

#[test]
fn hadoopgis_runs_six_preprocessing_steps_per_dataset() {
    // §II.A's six-step pipeline, with step 5 split into copy/serial/copy.
    let (l, r) = inputs();
    let out = HadoopGis::default()
        .run(&Cluster::new(ClusterConfig::workstation()), &l, &r, JoinPredicate::Intersects)
        .unwrap();
    for phase in [Phase::IndexA, Phase::IndexB] {
        let stages: Vec<_> = out.trace.stages.iter().filter(|s| s.phase == phase).collect();
        assert_eq!(stages.len(), 8, "steps 1,2,3,4,5a,5b,5c,6");
        assert!(stages.iter().any(|s| s.kind == StageKind::LocalSerial), "step 5 is serial");
        assert_eq!(
            stages.iter().filter(|s| s.kind == StageKind::FsCopy).count(),
            2,
            "step 5 copies to local and back"
        );
    }
}

#[test]
fn spatialhadoop_join_is_map_only_with_serial_global_join() {
    let (l, r) = inputs();
    let out = SpatialHadoop::default().run(&cluster(), &l, &r, JoinPredicate::Intersects).unwrap();
    let dj: Vec<_> =
        out.trace.stages.iter().filter(|s| s.phase == Phase::DistributedJoin).collect();
    assert_eq!(dj.len(), 2, "getSplits + one map-only job");
    assert_eq!(dj[0].kind, StageKind::LocalSerial, "global join runs on the master");
    assert_eq!(dj[1].kind, StageKind::MapOnlyJob, "local join has no reducers");
    assert_eq!(dj[1].shuffle_bytes, 0, "no shuffle in the join job");
}

#[test]
fn hadoopgis_pays_pipes_spatialhadoop_does_not() {
    let (l, r) = inputs();
    let c = Cluster::new(ClusterConfig::workstation());
    let hgis = HadoopGis::default().run(&c, &l, &r, JoinPredicate::Intersects).unwrap();
    let shadoop = SpatialHadoop::default().run(&c, &l, &r, JoinPredicate::Intersects).unwrap();
    let hg_pipes: u64 = hgis.trace.stages.iter().map(|s| s.pipe_bytes).sum();
    let sh_pipes: u64 = shadoop.trace.stages.iter().map(|s| s.pipe_bytes).sum();
    assert!(hg_pipes > 0, "streaming pipes every byte");
    assert_eq!(sh_pipes, 0, "native jobs never touch a pipe");
}

#[test]
fn breakdown_phases_cover_the_total() {
    let (l, r) = inputs();
    let c = cluster();
    for sys in [
        Box::new(SpatialHadoop::default()) as Box<dyn DistributedSpatialJoin>,
        Box::new(SpatialSpark::default()),
    ] {
        let out = sys.run(&c, &l, &r, JoinPredicate::Intersects).unwrap();
        let sum = out.trace.phase_ns(Phase::IndexA)
            + out.trace.phase_ns(Phase::IndexB)
            + out.trace.phase_ns(Phase::DistributedJoin);
        assert_eq!(sum, out.trace.total_ns(), "{}: IA+IB+DJ = TOT", sys.name());
    }
}

#[test]
fn spark_stages_shuffle_in_memory() {
    let (l, r) = inputs();
    let out = SpatialSpark::default().run(&cluster(), &l, &r, JoinPredicate::Intersects).unwrap();
    let shuffled: u64 = out.trace.stages.iter().map(|s| s.shuffle_bytes).sum();
    assert!(shuffled > 0, "groupByKey/join move bytes");
    assert!(
        out.trace.stages.iter().all(|s| s.kind == StageKind::SparkStage),
        "every stage is a Spark stage"
    );
}
